// Package predict implements the phase-aware configuration prediction
// and prefetch subsystem layered on top of the paper's reactive steering
// manager. The reactive selection unit (package core) only sees the
// instructions already queued, so every configuration switch eats the
// full partial-reconfiguration latency on the critical path. The
// predictor hides part of that latency by learning the workload's phase
// structure and loading the next configuration speculatively, before
// demand shifts:
//
//   - a fixed-size ring of per-type 3-bit demand vectors supplies a
//     short-horizon demand average (exact, integer, O(1) per cycle);
//   - a long-horizon EWMA of the same demands supplies the baseline a
//     phase-change detector compares the ring average against;
//   - a first-order Markov table over observed steering-configuration
//     transitions predicts which basis configuration follows the
//     current one;
//   - measured phase lengths (cycles between detected phase changes)
//     let the predictor *anticipate* the next boundary and start
//     loading early, when hiding the reconfiguration latency is worth
//     a bounded error-metric sacrifice.
//
// Speculative loads are partial reconfigurations of idle RFU spans
// issued through the same rfu.Fabric.CanReconfigure/Reconfigure gate as
// demand steering and fault repairs, so prefetch traffic competes
// fairly for the configuration bus: repairs (fabric tick) go first,
// demand steering (core.Manager.Step) second, and the prefetcher only
// takes spans the bus has left over. Outcomes — confirm, mispredict,
// cancel, wasted bus spans — accumulate into core.Stats and stream to
// telemetry as record:"prefetch" events.
package predict

import (
	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rfu"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// Defaults and fixed tuning constants of the predictor. The fixed-point
// scale keeps all phase arithmetic in integers, so prediction is
// bit-deterministic across platforms.
const (
	// DefaultHistoryDepth is the demand-history ring size.
	DefaultHistoryDepth = 32
	// DefaultConfidence is the Markov confidence threshold.
	DefaultConfidence = 0.55

	// fpScale is the fixed-point scale of the demand averages (<<8).
	fpShift = 8
	// ewmaShift sets the long-horizon EWMA decay to alpha = 1/32.
	ewmaShift = 5
	// entryShift sets the phase-entry profile decay to alpha = 1/8 — the
	// entry window is short, so the profile must adapt within a few
	// visits.
	entryShift = 3
	// phaseThreshFP is the phase-change detection threshold: the sum of
	// per-type |short - long| demand distances, in fixed point (1.25
	// demand units).
	phaseThreshFP = 320
	// minTransitions is the smallest Markov row total trusted for
	// prediction.
	minTransitions = 2
	// settleCycles is how long a basis configuration must be held before
	// it counts as a Markov state. Reactive steering often hops through a
	// transient configuration mid-shift (the demand mixture passes
	// through a memory-ish blend on its way from integer to floating
	// point, say); learning those hops as transitions poisons the table
	// and turns predictions into mid-phase mispredicts.
	settleCycles = 16
	// specTTLFallback bounds a speculation's lifetime before any phase
	// length has been measured.
	specTTLFallback = 1024
	// maxSpecOpens bounds speculations per phase window: one premature
	// open resolved as mispredicted may retry once closer to the real
	// boundary, but a third would be thrash.
	maxSpecOpens = 2
	// specShortfall is how many units below the short-horizon demand
	// ceiling a speculative rewrite may briefly push a unit type. The
	// dip only lasts the tail of the dying phase — anticipation starts
	// one reconfiguration latency before the predicted boundary — so a
	// two-unit shortfall against demand that is about to vanish buys
	// units the next phase's queue would otherwise block on.
	specShortfall = 2
)

// Config tunes the predictor; zero fields select the defaults.
type Config struct {
	// HistoryDepth sizes the demand-history ring (default 32).
	HistoryDepth int
	// Confidence is the fraction of a Markov row's transitions the
	// predicted successor must hold before speculative loads are issued
	// (default 0.55).
	Confidence float64
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.HistoryDepth <= 0 {
		c.HistoryDepth = DefaultHistoryDepth
	}
	if c.Confidence <= 0 {
		c.Confidence = DefaultConfidence
	}
	return c
}

// Manager is the prefetch policy: the reactive steering manager plus
// the predictor and speculative loader. It implements cpu.Manager.
type Manager struct {
	m      *core.Manager
	fabric *rfu.Fabric

	depth   int
	confPct int // confidence threshold in percent

	// Demand-history ring of clamped 3-bit vectors with a running sum,
	// so the short-horizon average is exact and O(1) to maintain.
	ring    []arch.Counts
	ringPos int
	ringN   int
	ringSum arch.Counts

	// Long-horizon per-type demand EWMA in fixed point (<<fpShift).
	ewma [arch.NumUnitTypes]int

	// Per-basis phase-entry demand profiles: an EWMA of the demand
	// observed during the entry window of each basis configuration —
	// the queue flood right after a switch, before the new units come
	// online and drain it — in fixed point (<<fpShift). Steady-state
	// demand is useless as a value signal (a well-configured phase
	// serves its queue, so measured demand collapses); the entry flood
	// is what the next boundary will look like, and the profile of the
	// predicted successor is the value side of the speculation ledger.
	profile     [arch.NumConfigs][arch.NumUnitTypes]int
	profileSeen [arch.NumConfigs]bool
	lastDemand  arch.Counts

	// First-order Markov table over observed steering-configuration
	// transitions: markov[from][to] counts settled reactive selection
	// switches from basis config `from` to basis config `to`. A switch
	// only settles — and only then becomes a Markov state — after the
	// new basis has been held settleCycles. Row 0 covers the run's first
	// transition (no prior basis).
	markov       [arch.NumConfigs][arch.NumConfigs]int
	curBasis     int // last basis the reactive selector named
	heldSince    int // cycle curBasis was first named
	settledBasis int // last basis held long enough to count

	// Phase-change detector state. The boundary clock (lastChange /
	// phaseLen) ticks on either boundary signal — a reactive basis
	// switch, or an accepted demand-shift detection — deduplicated by a
	// refractory window, so it keeps ticking even when prefetching has
	// fully converted the fabric and the reactive selector no longer
	// needs to switch.
	cycle      int
	inShift    bool
	lastChange int
	phaseLen   int // EWMA of measured phase lengths, in cycles
	phaseSeen  bool
	phaseCount int // accepted boundary ticks so far
	phaseDom   int // dominant demand class of the current phase (-1 initially)

	// Per-basis phase lengths: how long the workload tends to stay in
	// each basis configuration's phase. Phases of different mixes run at
	// different IPC, so their cycle lengths differ systematically and a
	// single global average anticipates each of them wrongly.
	basisLen     [arch.NumConfigs]int
	basisLenSeen [arch.NumConfigs]bool
	lastSettle   int

	// Active speculation: one predicted target at a time. Spans issued
	// for it are charged as wasted bus spans if it ends mispredicted or
	// cancelled.
	specActive  bool
	specTarget  int // basis index 1..3
	specSpans   int
	specStart   int
	specConfPct int
	// specHeldStreak counts consecutive cycles the reactive selector
	// named a configuration other than the speculation target while the
	// hold suppressed its load. A sustained streak is live evidence the
	// prediction is wrong (or premature) and resolves it as mispredicted
	// — without this, a premature speculation would hold a degraded
	// allocation against real demand until the boundary finally arrives.
	specHeldStreak int
	// specOpens counts speculations opened in the current phase window,
	// so a mispredict-and-retry cycle cannot thrash.
	specOpens int
	// specIssued marks slots already speculatively rewritten under the
	// active speculation, so a span the reactive selector claws back is
	// not re-fought every cycle (each round trip would freeze the span
	// for a full reconfiguration latency).
	specIssued [arch.NumRFUSlots]bool

	probe *telemetry.Probe
	spans *span.Recorder

	// Reusable scratch buffers so Manage never allocates.
	unitsScratch []config.PlacedUnit
	liveScratch  []config.PlacedUnit
}

// NewManager builds the prefetch policy over a fabric with the default
// steering basis.
func NewManager(fabric *rfu.Fabric, cfg Config) *Manager {
	return NewManagerBasis(fabric, config.DefaultBasis(), cfg)
}

// NewManagerBasis builds the prefetch policy with a custom basis.
func NewManagerBasis(fabric *rfu.Fabric, basis [3]config.Configuration, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		m:            core.NewManager(fabric, basis),
		fabric:       fabric,
		depth:        cfg.HistoryDepth,
		confPct:      int(cfg.Confidence * 100),
		ring:         make([]arch.Counts, cfg.HistoryDepth),
		phaseDom:     -1,
		unitsScratch: make([]config.PlacedUnit, 0, arch.NumRFUSlots),
		liveScratch:  make([]config.PlacedUnit, 0, arch.NumRFUSlots),
	}
}

// Core exposes the wrapped reactive steering manager (for residency and
// cache knobs, stats and reports).
func (pm *Manager) Core() *core.Manager { return pm.m }

// SetTelemetry installs a telemetry probe on the predictor and the
// wrapped reactive manager (nil disables).
func (pm *Manager) SetTelemetry(p *telemetry.Probe) {
	pm.probe = p
	pm.m.SetTelemetry(p)
}

// SetSpans installs a span recorder on the predictor (phase and
// speculation spans) and the wrapped reactive manager (cache epochs).
func (pm *Manager) SetSpans(r *span.Recorder) {
	pm.spans = r
	pm.m.SetSpans(r)
}

// Manage runs one cycle of prediction-augmented configuration
// management: record demand history, run the reactive selection/load
// pass unchanged, learn the configuration transition it exposed, and
// issue or retire speculative loads.
func (pm *Manager) Manage(required arch.Counts) {
	pm.cycle++
	pm.observe(required)
	sel := pm.m.Step(required)
	pm.transition(sel)
	pm.speculate(sel)
}

// observe pushes the cycle's demand vector into the history ring,
// updates the long-horizon EWMA and runs the phase-change detector.
func (pm *Manager) observe(required arch.Counts) {
	var d arch.Counts
	for t, v := range required {
		if v < 0 {
			v = 0
		} else if v > 7 {
			v = 7
		}
		d[t] = v
	}
	if pm.ringN == pm.depth {
		old := pm.ring[pm.ringPos]
		for t := range pm.ringSum {
			pm.ringSum[t] -= old[t]
		}
	} else {
		pm.ringN++
	}
	pm.ring[pm.ringPos] = d
	pm.ringPos++
	if pm.ringPos == pm.depth {
		pm.ringPos = 0
	}
	pm.lastDemand = d
	for t := range pm.ringSum {
		pm.ringSum[t] += d[t]
		pm.ewma[t] += (d[t]<<fpShift - pm.ewma[t]) >> ewmaShift
	}

	// Phase detection: the short-horizon ring average drifting away
	// from the long-horizon EWMA marks a phase boundary. Hysteresis
	// (release at half the threshold) keeps one boundary from firing
	// repeatedly while the EWMA catches up.
	dist := 0
	for t := range pm.ringSum {
		short := (pm.ringSum[t] << fpShift) / pm.ringN
		dd := short - pm.ewma[t]
		if dd < 0 {
			dd = -dd
		}
		dist += dd
	}
	switch {
	case dist >= phaseThreshFP:
		pm.inShift = true
		// A real phase boundary moves the demand's dominant class; a
		// detector refire on in-phase noise does not. Rejecting
		// same-class fires keeps blips from polluting the phase-length
		// estimate and resetting the anticipation clock. The check runs
		// every cycle the shift lasts, not just at its rising edge: when
		// the threshold trips the ring is still dominated by the dying
		// phase, and the new class only takes over some cycles later.
		if dom := pm.dominantClass(); dom != pm.phaseDom {
			pm.phaseDom = dom
			pm.phaseChange()
		}
	case pm.inShift && dist < phaseThreshFP/2:
		pm.inShift = false
	}
}

// dominantClass classifies the short-horizon demand into the class of
// its heaviest need — integer (IntALU+IntMDU), memory (LSU) or floating
// point (FPALU+FPMDU), mirroring the three basis configurations.
// Summing per class keeps in-phase flapping between two same-class
// types (FPALU vs FPMDU, say) from looking like a phase change.
func (pm *Manager) dominantClass() int {
	classes := [3]int{
		pm.ringSum[arch.IntALU] + pm.ringSum[arch.IntMDU],
		pm.ringSum[arch.LSU],
		pm.ringSum[arch.FPALU] + pm.ringSum[arch.FPMDU],
	}
	dom, best := 0, -1
	for c, v := range classes {
		if v > best {
			dom, best = c, v
		}
	}
	return dom
}

// phaseChange handles one accepted demand-shift detection: count it,
// log the event, tick the boundary clock, and resolve the active
// speculation. The boundary the speculation targeted has arrived: if
// the fabric is (nearly) converted the prediction did its job — the
// reactive selector will score the prefetched layout as the "current"
// configuration and never name it, so this is the only confirm path a
// fully successful speculation has.
func (pm *Manager) phaseChange() {
	pm.m.NotePrefetch(0, 0, 0, 0, 0, 1)
	if pm.probe != nil {
		pm.probe.Prefetch(telemetry.PrefetchEvent{Event: telemetry.PrefetchPhaseChange})
	}
	pm.spans.PhaseBoundary()
	pm.boundary()
	if !pm.specActive {
		return
	}
	// Only a (nearly) converted fabric confirms here; a partial
	// speculation stays open for the reactive switch that is about to
	// settle and resolve it — the detector usually fires first, and
	// cancelling now would mis-charge spans the shift is about to use.
	target := pm.m.Basis()[pm.specTarget-1]
	if pm.fabric.Allocation().Distance(target) <= 2 {
		pm.resolveSpec(telemetry.PrefetchConfirm)
	}
}

// boundary ticks the phase-boundary clock from either boundary signal —
// a reactive basis switch or an accepted demand-shift detection. The
// refractory window deduplicates the two signals (and transient
// mid-shift switches) announcing the same boundary, which would
// otherwise drag the phase-length estimate far below the workload's
// real period.
func (pm *Manager) boundary() {
	length := pm.cycle - pm.lastChange
	refractory := 2 * settleCycles
	if pm.phaseSeen && pm.phaseLen/4 > refractory {
		refractory = pm.phaseLen / 4
	}
	if length < refractory {
		// Too soon to be a distinct boundary — either the second signal
		// for the boundary just ticked, or startup noise (the very first
		// configuration load announces itself as a "boundary" a handful
		// of cycles in; seeding the phase-length estimate with it would
		// leave the anticipation window wide open for the whole ramp-up).
		return
	}
	pm.lastChange = pm.cycle
	pm.phaseCount++
	pm.specOpens = 0
	if !pm.phaseSeen {
		pm.phaseLen = length
		pm.phaseSeen = true
	} else {
		pm.phaseLen += (length - pm.phaseLen) / 4
	}
}

// transition learns from the reactive selection pass: track the basis
// the selector names, and once a new basis has been held settleCycles,
// record the settled transition in the Markov table, resolve the active
// speculation against it, and tick the boundary clock.
func (pm *Manager) transition(sel core.Selection) {
	if !sel.Current() && sel.Choice != pm.curBasis {
		pm.curBasis = sel.Choice
		pm.heldSince = pm.cycle
	}
	// Sample the phase-entry demand profile while the entry flood lasts:
	// from the switch until the new configuration's units have had one
	// reconfiguration latency to come online and start draining it.
	if pm.curBasis != 0 && pm.cycle-pm.heldSince < settleCycles+pm.fabric.ReconfigLatency() {
		for t := range pm.lastDemand {
			pm.profile[pm.curBasis][t] += (pm.lastDemand[t]<<fpShift - pm.profile[pm.curBasis][t]) >> entryShift
		}
		pm.profileSeen[pm.curBasis] = true
	}
	if pm.curBasis != pm.settledBasis && pm.cycle-pm.heldSince >= settleCycles {
		pm.markov[pm.settledBasis][pm.curBasis]++
		if pm.specActive {
			if pm.curBasis == pm.specTarget {
				// The reactive path settled on exactly what the
				// prefetcher already loaded (or started loading).
				pm.resolveSpec(telemetry.PrefetchConfirm)
			} else {
				pm.resolveSpec(telemetry.PrefetchMispredict)
			}
		}
		if pm.settledBasis != 0 {
			dur := pm.cycle - pm.lastSettle
			if pm.basisLenSeen[pm.settledBasis] {
				pm.basisLen[pm.settledBasis] += (dur - pm.basisLen[pm.settledBasis]) / 4
			} else {
				pm.basisLen[pm.settledBasis] = dur
				pm.basisLenSeen[pm.settledBasis] = true
			}
		}
		pm.lastSettle = pm.cycle
		pm.settledBasis = pm.curBasis
		pm.boundary()
	}
	if pm.specActive && pm.specSpans > 0 {
		// Live mispredict evidence: the hold is suppressing loads toward
		// a configuration the reactive selector keeps asking for. Only a
		// speculation that issued spans holds anything; an empty one
		// suppresses nothing and waits for the boundary on its own.
		if !sel.Current() && sel.Choice != pm.specTarget {
			pm.specHeldStreak++
		} else {
			pm.specHeldStreak = 0
		}
		// The higher the reconfiguration latency, the more a premature
		// release costs (restoring the spans pays the full latency
		// again), so the hold gets proportionally more patience before
		// the streak is ruled a mispredict.
		if pm.specHeldStreak >= settleCycles+pm.fabric.ReconfigLatency()/2 {
			pm.resolveSpec(telemetry.PrefetchMispredict)
		}
	}
	if pm.specActive && pm.cycle-pm.specStart > pm.specTTL() {
		pm.resolveSpec(telemetry.PrefetchCancel)
	}
}

// specTTL bounds how long a speculation may stay open.
func (pm *Manager) specTTL() int {
	if pm.phaseSeen && pm.phaseLen > 0 {
		return 2 * pm.phaseLen
	}
	return specTTLFallback
}

// resolveSpec closes the active speculation with the given outcome
// event, charging wasted bus spans for mispredictions and cancels.
func (pm *Manager) resolveSpec(event string) {
	confirmed, mispredicted, cancelled, wasted := 0, 0, 0, 0
	outcome := span.OutcomeCancel
	switch event {
	case telemetry.PrefetchConfirm:
		confirmed = 1
		outcome = span.OutcomeConfirm
	case telemetry.PrefetchMispredict:
		mispredicted = 1
		wasted = pm.specSpans
		outcome = span.OutcomeMispredict
	case telemetry.PrefetchCancel:
		cancelled = 1
		wasted = pm.specSpans
	}
	pm.spans.SpecResolve(outcome, pm.specSpans)
	pm.m.NotePrefetch(0, confirmed, mispredicted, cancelled, wasted, 0)
	if pm.probe != nil {
		pm.probe.Prefetch(telemetry.PrefetchEvent{
			Event:         event,
			Config:        pm.m.Basis()[pm.specTarget-1].Name,
			Spans:         pm.specSpans,
			ConfidencePct: pm.specConfPct,
		})
	}
	pm.specActive = false
	pm.specSpans = 0
	pm.m.HoldTarget = 0
}

// speculate opens a new speculation when the predictor is confident and
// the timing is right, and pushes the active speculation's remaining
// spans through whatever configuration-bus bandwidth demand steering
// and fault repairs left unused this cycle.
func (pm *Manager) speculate(sel core.Selection) {
	if !pm.specActive {
		// Only speculate from a steady reactive state: while the
		// reactive loader is mid-transition the bus belongs to demand.
		// And only ahead of the predicted boundary — once a shift is
		// underway the reactive selector reacts faster than the phase
		// detector, so boundary-time speculation would just steal bus
		// spans from demand loads.
		if !sel.Current() || pm.inShift || pm.specOpens >= maxSpecOpens || !pm.anticipating() {
			return
		}
		next, confPct, ok := pm.predict()
		if !ok {
			return
		}
		pm.specActive = true
		pm.specTarget = next
		pm.specStart = pm.cycle
		pm.specConfPct = confPct
		pm.specSpans = 0
		pm.specHeldStreak = 0
		pm.specOpens++
		pm.specIssued = [arch.NumRFUSlots]bool{}
		pm.spans.SpecOpen(pm.m.Basis()[next-1].Name, confPct)
	}
	pm.issueSpans()
}

// predict consults the Markov row of the settled basis configuration
// and returns the most likely successor with its confidence (percent),
// or ok=false when the row is too thin or too flat to trust.
func (pm *Manager) predict() (next, confPct int, ok bool) {
	row := pm.markov[pm.settledBasis]
	total, best, bestN := 0, 0, 0
	for to := 1; to < arch.NumConfigs; to++ {
		n := row[to]
		total += n
		if n > bestN {
			best, bestN = to, n
		}
	}
	if total < minTransitions || best == 0 || best == pm.settledBasis {
		return 0, 0, false
	}
	confPct = bestN * 100 / total
	if confPct < pm.confPct {
		return 0, 0, false
	}
	return best, confPct, true
}

// anticipating reports whether the predicted next phase boundary is
// close enough to start loading early. Anticipation only pays when the
// reconfiguration latency is non-trivial relative to the phase length —
// on a fast fabric the reactive path already switches cheaply, and
// converting early would just invite thrash. When it does pay, loads
// start just in time — one reconfiguration latency plus a small slack
// before the predicted boundary, never earlier than mid-phase — so the
// pre-boundary capacity dip lasts barely longer than the span freeze
// the conversion costs anyway, while the converted units come online
// right as the next phase's queue starts blocking on them.
func (pm *Manager) anticipating() bool {
	// Demand at least a few accepted boundaries first: the phase-length
	// estimate is an EWMA, and anticipating off a half-converged value
	// opens speculations mid-phase, where they only cost capacity.
	if pm.phaseCount < 3 || pm.phaseLen <= 0 {
		return false
	}
	expect := pm.expectedLen()
	lat := pm.fabric.ReconfigLatency()
	if lat*16 < expect {
		return false
	}
	start := expect - (lat + 4)
	if start < expect/2 {
		start = expect / 2
	}
	return pm.cycle-pm.lastChange >= start
}

// expectedLen is the predicted length of the current phase: the settled
// basis's own phase-length history when available (phases of different
// mixes run at different IPC, so their lengths differ systematically),
// otherwise the global estimate.
func (pm *Manager) expectedLen() int {
	if pm.basisLenSeen[pm.settledBasis] {
		return pm.basisLen[pm.settledBasis]
	}
	return pm.phaseLen
}

// issueSpans rewrites the speculation target's differing spans onto
// idle RFU slots, one CanReconfigure-gated span at a time, so prefetch
// traffic only ever takes configuration-bus spans that demand steering
// and fault repair left unused. Each slot is attempted at most once per
// speculation.
func (pm *Manager) issueSpans() {
	target := pm.m.Basis()[pm.specTarget-1]
	avail := pm.fabric.EffectiveTotalCounts()
	demand := pm.ceilDemand()
	next, nextSeen := pm.predictedDemand()
	issued := 0
	pm.unitsScratch = target.AppendUnits(pm.unitsScratch[:0])
	for _, u := range pm.unitsScratch {
		if pm.specIssued[u.Slot] {
			continue // already attempted under this speculation
		}
		if pm.fabric.Allocation().Slots[u.Slot] == arch.Encode(u.Type) {
			continue // already implements the unit
		}
		if nextSeen && avail[u.Type] >= next[u.Type] {
			// Value gate: the next phase is not predicted to need more
			// units of this type than the fabric already has, so the
			// rewrite would pay its capacity cost for nothing. The
			// reactive switch will pick the span up at the boundary if
			// the profile is wrong.
			continue
		}
		if !pm.fabric.CanReconfigure(u.Type, u.Slot) {
			continue // span busy, unhealthy, or the bus is full
		}
		if !pm.spanAffordable(u, &avail, demand) {
			continue
		}
		if pm.fabric.Reconfigure(u.Type, u.Slot) {
			issued++
			pm.specSpans++
			pm.specIssued[u.Slot] = true
			// Commit: with real spans converted, hold the configuration
			// against reactive claw-back until the speculation resolves.
			// Like a branch predictor overriding sequential fetch, the
			// commitment is what makes anticipation possible at all —
			// without it the reactive selector reverts every span whose
			// loss it can score, and each revert freezes the span for a
			// full reconfiguration latency. An empty speculation commits
			// nothing: there is nothing to protect, so demand steering
			// stays fully in charge.
			pm.m.HoldTarget = pm.specTarget
		}
	}
	if issued > 0 {
		pm.m.NotePrefetch(issued, 0, 0, 0, 0, 0)
		if pm.probe != nil {
			pm.probe.Prefetch(telemetry.PrefetchEvent{
				Event:         telemetry.PrefetchIssue,
				Config:        target.Name,
				Spans:         issued,
				ConfidencePct: pm.specConfPct,
			})
		}
	}
}

// spanAffordable reports whether overwriting the span of u is an
// acceptable anticipation cost, and debits avail for the destroyed
// units when it is. The gate uses exact capacity arithmetic — the
// barrel-shifter approximation is too coarse to price it (3 units
// serving demand 3 scores error 1 despite losing nothing) — and allows
// a bounded shortfall of specShortfall unit below the short-horizon
// demand ceiling per type: anticipation trades a small, brief capacity
// dip in the dying phase for post-boundary capacity in the next one,
// when the queue would otherwise block head-of-line on the missing
// units for a full reconfiguration latency.
func (pm *Manager) spanAffordable(u config.PlacedUnit, avail *arch.Counts, demand arch.Counts) bool {
	lo, hi := u.Slot, u.Slot+u.Span
	var lost arch.Counts
	pm.liveScratch = config.Configuration{Layout: pm.fabric.Allocation().Slots}.AppendUnits(pm.liveScratch[:0])
	for _, live := range pm.liveScratch {
		if live.Slot < hi && live.Slot+live.Span > lo {
			lost[live.Type]++
		}
	}
	for t, n := range lost {
		if n > 0 && avail[t]-n < demand[t]-specShortfall {
			return false
		}
	}
	for t, n := range lost {
		avail[t] -= n
	}
	avail[u.Type]++
	return true
}

// predictedDemand returns the demand profile of the speculation
// target's phase, rounded up — the predictor's estimate of what the
// next phase will need. seen is false until the target basis has been
// settled in at least once.
func (pm *Manager) predictedDemand() (d arch.Counts, seen bool) {
	if !pm.profileSeen[pm.specTarget] {
		return d, false
	}
	for t := range d {
		d[t] = (pm.profile[pm.specTarget][t] + (1 << fpShift) - 1) >> fpShift
	}
	return d, true
}

// ceilDemand returns the ring's per-type demand average rounded up —
// the demand floor the affordability gate protects.
func (pm *Manager) ceilDemand() arch.Counts {
	var d arch.Counts
	if pm.ringN == 0 {
		return d
	}
	for t := range d {
		v := (pm.ringSum[t] + pm.ringN - 1) / pm.ringN
		if v > 7 {
			v = 7
		}
		d[t] = v
	}
	return d
}
