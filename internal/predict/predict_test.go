package predict

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/rfu"
)

// Demand vectors that steer the reactive selector decisively toward the
// integer and floating-point basis configurations.
var (
	intDemand = arch.Counts{5, 1, 1, 0, 0}
	fpDemand  = arch.Counts{1, 0, 1, 3, 2}
)

func newTestManager(latency int) (*Manager, *rfu.Fabric) {
	f := rfu.New(latency)
	return NewManager(f, Config{}), f
}

// run drives the manager the way cpu.Processor does: the fabric ticks
// (completing in-flight reconfigurations) before the manager runs.
func run(pm *Manager, f *rfu.Fabric, demand arch.Counts, cycles int) {
	for i := 0; i < cycles; i++ {
		f.Tick()
		pm.Manage(demand)
	}
}

// alternate runs whole int/fp phases of `period` cycles each.
func alternate(pm *Manager, f *rfu.Fabric, phases, period int) {
	for p := 0; p < phases; p++ {
		d := intDemand
		if p%2 == 1 {
			d = fpDemand
		}
		run(pm, f, d, period)
	}
}

func TestConfigDefaults(t *testing.T) {
	pm, _ := newTestManager(8)
	if pm.depth != DefaultHistoryDepth {
		t.Errorf("depth = %d, want %d", pm.depth, DefaultHistoryDepth)
	}
	if pm.confPct != int(DefaultConfidence*100) {
		t.Errorf("confPct = %d, want %d", pm.confPct, int(DefaultConfidence*100))
	}
	pm2, _ := rfu.New(8), 0
	_ = pm2
	m := NewManager(rfu.New(8), Config{HistoryDepth: 8, Confidence: 0.9})
	if m.depth != 8 || m.confPct != 90 {
		t.Errorf("custom config: depth %d confPct %d, want 8 90", m.depth, m.confPct)
	}
}

// TestRingAverageTracksRecentDemand pins the demand-history ring: the
// running sum covers exactly the last `depth` samples, and ceilDemand
// rounds the average up.
func TestRingAverageTracksRecentDemand(t *testing.T) {
	f := rfu.New(8)
	pm := NewManager(f, Config{HistoryDepth: 4})
	// Fill past capacity with one vector, then overwrite with another:
	// after depth pushes of the new vector the old one must be gone.
	run(pm, f, arch.Counts{7, 0, 0, 0, 0}, 10)
	run(pm, f, arch.Counts{1, 2, 0, 0, 0}, 4)
	if got := pm.ceilDemand(); got != (arch.Counts{1, 2, 0, 0, 0}) {
		t.Errorf("ceilDemand = %v after ring overwrite, want {1 2 0 0 0}", got)
	}
	if pm.ringN != 4 {
		t.Errorf("ringN = %d, want capped at 4", pm.ringN)
	}
	// Rounding up: average 1.25 must ceil to 2.
	pm2 := NewManager(rfu.New(8), Config{HistoryDepth: 4})
	for _, v := range []int{1, 1, 1, 2} {
		pm2.observe(arch.Counts{v, 0, 0, 0, 0})
	}
	if got := pm2.ceilDemand(); got[arch.IntALU] != 2 {
		t.Errorf("ceilDemand[IntALU] = %d for avg 1.25, want 2", got[arch.IntALU])
	}
}

// TestObserveClampsDemand pins the 3-bit clamp on history entries.
func TestObserveClampsDemand(t *testing.T) {
	pm, _ := newTestManager(8)
	pm.observe(arch.Counts{100, -5, 7, 0, 0})
	if pm.lastDemand != (arch.Counts{7, 0, 7, 0, 0}) {
		t.Errorf("lastDemand = %v, want clamped {7 0 7 0 0}", pm.lastDemand)
	}
}

// TestPhaseDetectorCountsBoundaries drives a demand shift large enough
// to separate the short-horizon ring average from the long-horizon EWMA
// and checks it is detected — and that steady demand is not.
func TestPhaseDetectorCountsBoundaries(t *testing.T) {
	pm, f := newTestManager(8)
	run(pm, f, intDemand, 400)
	if n := pm.m.Stats().PhaseChanges; n > 1 {
		t.Errorf("steady demand produced %d phase changes, want <= 1 (startup)", n)
	}
	before := pm.m.Stats().PhaseChanges
	run(pm, f, fpDemand, 400)
	if n := pm.m.Stats().PhaseChanges; n != before+1 {
		t.Errorf("int->fp shift produced %d new phase changes, want exactly 1", n-before)
	}
}

// TestMarkovLearnsSettledTransitions pins settled-transition learning:
// a long alternation must fill markov[int][fp] and markov[fp][int], and
// a basis only counts after being held settleCycles.
func TestMarkovLearnsSettledTransitions(t *testing.T) {
	pm, f := newTestManager(8)
	alternate(pm, f, 6, 200)
	if pm.markov[1][3] == 0 {
		t.Errorf("markov[int][fp] = 0 after alternation, want > 0 (table %v)", pm.markov)
	}
	if pm.markov[3][1] == 0 {
		t.Errorf("markov[fp][int] = 0 after alternation, want > 0 (table %v)", pm.markov)
	}
	// predict from the int row must name fp with high confidence.
	pm.settledBasis = 1
	next, confPct, ok := pm.predict()
	if !ok || next != 3 {
		t.Fatalf("predict from int = (%d, %d%%, %v), want (3, _, true)", next, confPct, ok)
	}
	if confPct < pm.confPct {
		t.Errorf("confidence %d%% below threshold %d%%", confPct, pm.confPct)
	}
}

// TestEntryProfileSampled pins the phase-entry demand profiles: after a
// few settled visits the profile of each basis reflects the demand seen
// right after switching to it, not the (served) steady state.
func TestEntryProfileSampled(t *testing.T) {
	pm, f := newTestManager(8)
	alternate(pm, f, 6, 200)
	if !pm.profileSeen[1] || !pm.profileSeen[3] {
		t.Fatalf("profiles seen = int:%v fp:%v, want both", pm.profileSeen[1], pm.profileSeen[3])
	}
	d, seen := arch.Counts{}, false
	pm.specTarget = 3
	d, seen = pm.predictedDemand()
	if !seen {
		t.Fatal("predictedDemand for fp not seen")
	}
	if d[arch.FPALU] == 0 {
		t.Errorf("fp entry profile has no FPALU demand: %v", d)
	}
}

// TestSpeculationLifecycle runs the full loop at a latency where
// anticipation engages: the predictor must issue speculative spans and
// confirm speculations, and the hold must be released by the end.
func TestSpeculationLifecycle(t *testing.T) {
	pm, f := newTestManager(16)
	alternate(pm, f, 16, 150)
	st := pm.m.Stats()
	if st.PrefetchIssued == 0 {
		t.Fatalf("no speculative spans issued over 16 phases (stats %+v)", st)
	}
	if st.PrefetchConfirmed == 0 {
		t.Errorf("no speculation confirmed (stats %+v)", st)
	}
	resolved := st.PrefetchConfirmed + st.PrefetchMispredicted + st.PrefetchCancelled
	if resolved == 0 {
		t.Errorf("no speculation resolved (stats %+v)", st)
	}
	if !pm.specActive && pm.m.HoldTarget != 0 {
		t.Errorf("hold %d left engaged with no active speculation", pm.m.HoldTarget)
	}
	// Wasted spans are only charged on mispredicts and cancels, so they
	// can never exceed what was issued.
	if st.PrefetchWastedSpans > st.PrefetchIssued {
		t.Errorf("wasted %d > issued %d", st.PrefetchWastedSpans, st.PrefetchIssued)
	}
}

// TestHoldEngagesOnlyWithSpans pins the commitment rule: a speculation
// that has not issued any span must not hold the reactive selector.
func TestHoldEngagesOnlyWithSpans(t *testing.T) {
	pm, _ := newTestManager(16)
	pm.specActive = true
	pm.specTarget = 3
	pm.specSpans = 0
	if pm.m.HoldTarget != 0 {
		t.Fatalf("HoldTarget = %d with zero-span speculation, want 0", pm.m.HoldTarget)
	}
}

// TestStreakResolvesMispredict pins the live-evidence path: a held
// speculation the reactive selector keeps voting against must resolve
// as mispredicted and release the hold.
func TestStreakResolvesMispredict(t *testing.T) {
	pm, f := newTestManager(8)
	// Teach the manager an int phase first so the selector has a settled
	// state, then force a bogus speculation against live fp demand.
	run(pm, f, intDemand, 100)
	pm.specActive = true
	pm.specTarget = 2 // memory — not what fp demand wants
	pm.specSpans = 1
	pm.specStart = pm.cycle
	pm.m.HoldTarget = 2
	before := pm.m.Stats().PrefetchMispredicted
	run(pm, f, fpDemand, 200)
	if got := pm.m.Stats().PrefetchMispredicted; got != before+1 {
		t.Errorf("mispredicts = %d, want %d (streak must fire)", got, before+1)
	}
	if pm.m.HoldTarget == 2 {
		t.Error("hold still engaged after streak mispredict")
	}
	if st := pm.m.Stats(); st.PrefetchWastedSpans == 0 {
		t.Error("mispredict charged no wasted spans")
	}
}

// TestTTLCancelsStaleSpeculation pins the cancel path: a speculation
// that nothing ever resolves dies at its TTL.
func TestTTLCancelsStaleSpeculation(t *testing.T) {
	pm, f := newTestManager(8)
	pm.specActive = true
	pm.specTarget = 3
	pm.specStart = 0
	before := pm.m.Stats().PrefetchCancelled
	// No phase length measured yet, so the fallback TTL applies. Zero
	// demand keeps the selector current, so neither settle nor streak
	// can resolve first.
	run(pm, f, arch.Counts{}, specTTLFallback+2)
	if got := pm.m.Stats().PrefetchCancelled; got != before+1 {
		t.Errorf("cancelled = %d, want %d (TTL must fire)", got, before+1)
	}
}

// TestManageDoesNotAllocate guards the cycle path: prediction must stay
// allocation-free once warmed up.
func TestManageDoesNotAllocate(t *testing.T) {
	pm, f := newTestManager(16)
	alternate(pm, f, 4, 150) // warm up: ring full, speculations flowing
	avg := testing.AllocsPerRun(500, func() {
		f.Tick()
		pm.Manage(intDemand)
	})
	if avg != 0 {
		t.Errorf("Manage allocates %.2f allocs/cycle, want 0", avg)
	}
}
