// Package stats holds the small reporting utilities the experiment
// harness uses: aligned text tables (the paper-artefact output format),
// numeric series and simple aggregates.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table is an aligned text table with a title and a header row.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v, and float64 cells
// with three decimals.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named sequence of float64 samples.
type Series struct {
	Name   string
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.Values = append(s.Values, v) }

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Min returns the smallest sample (+Inf for an empty series).
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.Values {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample (-Inf for an empty series).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// GeoMean returns the geometric mean of the (all-positive) samples, the
// conventional aggregate for speedups; it panics on non-positive samples.
func (s *Series) GeoMean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range s.Values {
		if v <= 0 {
			panic("stats: GeoMean of non-positive sample")
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(s.Values)))
}

// Ratio formats a/b as a speedup string like "1.42x".
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
