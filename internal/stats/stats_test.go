package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line %q", lines[0])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[4], "2.500") {
		t.Errorf("rows wrong:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	// Columns align: header and row cells start at the same offset.
	if strings.Index(lines[1], "value") != strings.Index(lines[3], "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title produced a blank line")
	}
}

func TestSeriesAggregates(t *testing.T) {
	var s Series
	for _, v := range []float64{1, 2, 4} {
		s.Add(v)
	}
	if s.Mean() != 7.0/3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if g := s.GeoMean(); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", g)
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.GeoMean() != 0 {
		t.Error("empty series aggregates nonzero")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty Min/Max not infinite")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	s := Series{Values: []float64{1, 0}}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.GeoMean()
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("Ratio = %q", Ratio(3, 2))
	}
	if Ratio(1, 0) != "inf" {
		t.Errorf("Ratio by zero = %q", Ratio(1, 0))
	}
}
