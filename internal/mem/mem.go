// Package mem provides the memory substrate of Fig. 1: a byte-addressable
// little-endian data memory implementing isa.DataMemory, and a
// direct-mapped data cache that turns addresses into extra load latency.
// Instruction memory is the decoded program itself (package isa), fetched
// by index; the trace cache lives in package fetch.
package mem

import "fmt"

// Memory is a flat little-endian byte-addressable memory. Addresses wrap
// modulo the (power-of-two) size, so wild speculative addresses read and
// write harmlessly inside the array instead of faulting — the simulator
// equivalent of a physical address space.
type Memory struct {
	data []byte
	mask uint32
}

// DefaultSize is the default memory size (1 MiB).
const DefaultSize = 1 << 20

// NewMemory allocates a memory of the given power-of-two size in bytes.
func NewMemory(size int) *Memory {
	if size <= 0 || size&(size-1) != 0 {
		panic(fmt.Sprintf("mem: size %d is not a positive power of two", size))
	}
	return &Memory{data: make([]byte, size), mask: uint32(size - 1)}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() int { return len(m.data) }

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint32) uint8 { return m.data[addr&m.mask] }

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint32, v uint8) { m.data[addr&m.mask] = v }

// LoadHalf reads a little-endian 16-bit value.
func (m *Memory) LoadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// StoreHalf writes a little-endian 16-bit value.
func (m *Memory) StoreHalf(addr uint32, v uint16) {
	m.StoreByte(addr, uint8(v))
	m.StoreByte(addr+1, uint8(v>>8))
}

// LoadWord reads a little-endian 32-bit value.
func (m *Memory) LoadWord(addr uint32) uint32 {
	return uint32(m.LoadHalf(addr)) | uint32(m.LoadHalf(addr+2))<<16
}

// StoreWord writes a little-endian 32-bit value.
func (m *Memory) StoreWord(addr uint32, v uint32) {
	m.StoreHalf(addr, uint16(v))
	m.StoreHalf(addr+2, uint16(v>>16))
}

// WriteWords stores a word slice starting at addr — a convenience for
// setting up example and benchmark data.
func (m *Memory) WriteWords(addr uint32, words []uint32) {
	for i, w := range words {
		m.StoreWord(addr+uint32(4*i), w)
	}
}

// ReadWords loads n words starting at addr.
func (m *Memory) ReadWords(addr uint32, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = m.LoadWord(addr + uint32(4*i))
	}
	return out
}

// Cache is a direct-mapped data cache model: an Access either hits (no
// extra latency) or misses (the line is filled and the configured miss
// penalty is charged). Only timing is modelled; data always comes from
// the backing Memory.
type Cache struct {
	lineShift   uint
	sets        int
	tags        []uint32
	valid       []bool
	missPenalty int

	hits, misses int
}

// NewCache builds a direct-mapped cache with the given number of sets,
// line size in bytes (a power of two) and miss penalty in cycles.
func NewCache(sets, lineSize, missPenalty int) *Cache {
	if sets <= 0 || lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("mem: bad cache geometry sets=%d line=%d", sets, lineSize))
	}
	if missPenalty < 0 {
		panic("mem: negative miss penalty")
	}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	return &Cache{
		lineShift:   shift,
		sets:        sets,
		tags:        make([]uint32, sets),
		valid:       make([]bool, sets),
		missPenalty: missPenalty,
	}
}

// Access looks up addr, fills the line on a miss, and returns the extra
// latency the access costs (0 on a hit, the miss penalty on a miss).
func (c *Cache) Access(addr uint32) int {
	line := addr >> c.lineShift
	set := int(line) % c.sets
	if c.valid[set] && c.tags[set] == line {
		c.hits++
		return 0
	}
	c.misses++
	c.valid[set] = true
	c.tags[set] = line
	return c.missPenalty
}

// Probe reports whether addr would hit, without changing cache state.
func (c *Cache) Probe(addr uint32) bool {
	line := addr >> c.lineShift
	set := int(line) % c.sets
	return c.valid[set] && c.tags[set] == line
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// Hits returns the number of hits observed.
func (c *Cache) Hits() int { return c.hits }

// Misses returns the number of misses observed.
func (c *Cache) Misses() int { return c.misses }

// MissPenalty returns the configured miss penalty in cycles.
func (c *Cache) MissPenalty() int { return c.missPenalty }
