package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMemoryRejectsBadSizes(t *testing.T) {
	for _, size := range []int{0, -4, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d accepted", size)
				}
			}()
			NewMemory(size)
		}()
	}
}

func TestWordRoundTrip(t *testing.T) {
	m := NewMemory(1 << 12)
	f := func(addr uint16, v uint32) bool {
		a := uint32(addr)
		m.StoreWord(a, v)
		return m.LoadWord(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := NewMemory(1 << 10)
	m.StoreWord(16, 0x04030201)
	for i, want := range []uint8{1, 2, 3, 4} {
		if got := m.LoadByte(16 + uint32(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
	if got := m.LoadHalf(16); got != 0x0201 {
		t.Errorf("half = %#x", got)
	}
	if got := m.LoadHalf(18); got != 0x0403 {
		t.Errorf("upper half = %#x", got)
	}
}

func TestAddressWrap(t *testing.T) {
	m := NewMemory(1 << 10)
	m.StoreWord(1<<10, 42) // wraps to 0
	if got := m.LoadWord(0); got != 42 {
		t.Errorf("wrapped store landed wrong: %d", got)
	}
	if got := m.LoadWord(3 << 10); got != 42 {
		t.Errorf("wrapped load = %d", got)
	}
}

func TestWriteReadWords(t *testing.T) {
	m := NewMemory(1 << 12)
	words := []uint32{5, 10, 0xffffffff, 0}
	m.WriteWords(100, words)
	got := m.ReadWords(100, len(words))
	for i := range words {
		if got[i] != words[i] {
			t.Errorf("word %d = %d, want %d", i, got[i], words[i])
		}
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	cases := []struct{ sets, line, penalty int }{
		{0, 32, 10}, {64, 0, 10}, {64, 33, 10}, {64, 32, -1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("geometry %+v accepted", c)
				}
			}()
			NewCache(c.sets, c.line, c.penalty)
		}()
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := NewCache(64, 32, 10)
	if got := c.Access(0x100); got != 10 {
		t.Errorf("cold access latency = %d, want 10", got)
	}
	if got := c.Access(0x100); got != 0 {
		t.Errorf("warm access latency = %d, want 0", got)
	}
	// Same line, different offset: still a hit.
	if got := c.Access(0x11f); got != 0 {
		t.Errorf("same-line access latency = %d, want 0", got)
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheConflictEviction(t *testing.T) {
	c := NewCache(4, 32, 10)
	// Addresses 0 and 4*32 map to the same set in a 4-set cache.
	c.Access(0)
	if got := c.Access(4 * 32); got != 10 {
		t.Errorf("conflicting line latency = %d, want miss", got)
	}
	if got := c.Access(0); got != 10 {
		t.Errorf("evicted line latency = %d, want miss", got)
	}
}

func TestProbeDoesNotAllocate(t *testing.T) {
	c := NewCache(16, 32, 10)
	if c.Probe(0x40) {
		t.Error("cold probe hit")
	}
	if c.Misses() != 0 {
		t.Error("probe counted as access")
	}
	c.Access(0x40)
	if !c.Probe(0x40) {
		t.Error("warm probe missed")
	}
}

func TestFlush(t *testing.T) {
	c := NewCache(16, 32, 10)
	c.Access(0)
	c.Flush()
	if c.Probe(0) {
		t.Error("line survived flush")
	}
}

// TestCacheDeterministicReplay: the same address stream produces the same
// hit/miss sequence.
func TestCacheDeterministicReplay(t *testing.T) {
	addrs := make([]uint32, 2000)
	rng := rand.New(rand.NewSource(9))
	for i := range addrs {
		addrs[i] = uint32(rng.Intn(1 << 14))
	}
	run := func() []int {
		c := NewCache(32, 16, 7)
		out := make([]int, len(addrs))
		for i, a := range addrs {
			out[i] = c.Access(a)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}
