// Equivalence tests for the packed-key steering cache: a cache hit
// must replay exactly the decision the CEM generators would have
// produced, so runs with the cache enabled and disabled are
// bit-identical — same per-cycle selections, same reconfigurations,
// same final fabric layout, same architectural stats — across the
// X1-X6 experiment workloads.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/predict"
	"repro/internal/rfu"
	"repro/internal/workload"
)

// runSteering executes prog under a steering manager over basis and
// returns the processor stats, the manager stats and the final fabric
// allocation. disableCache switches the packed-key cache off so the
// CEM generators run on every selection.
func runSteering(t *testing.T, prog isa.Program, params cpu.Params, basis [arch.NumConfigs - 1]config.Configuration, exact, disableCache bool) (cpu.Stats, core.Stats, config.AllocationVector) {
	t.Helper()
	p := cpu.New(prog, params, nil)
	m := core.NewManager(p.Fabric(), basis)
	m.ExactCEM = exact
	m.DisableCache = disableCache
	p.SetManager(&baseline.Steering{M: m})
	st, err := p.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st, m.Stats(), p.Fabric().Allocation()
}

// stripCacheCounters zeroes the cache-effectiveness counters, which are
// the only manager stats allowed to differ between cached and uncached
// runs.
func stripCacheCounters(s core.Stats) core.Stats {
	s.CacheHits = 0
	s.CacheMisses = 0
	return s
}

func checkEquivalent(t *testing.T, prog isa.Program, params cpu.Params, basis [arch.NumConfigs - 1]config.Configuration, exact bool) {
	t.Helper()
	cachedCPU, cachedMgr, cachedAlloc := runSteering(t, prog, params, basis, exact, false)
	plainCPU, plainMgr, plainAlloc := runSteering(t, prog, params, basis, exact, true)

	if cachedCPU != plainCPU {
		t.Errorf("processor stats diverge:\n  cached:   %+v\n  uncached: %+v", cachedCPU, plainCPU)
	}
	if got, want := stripCacheCounters(cachedMgr), stripCacheCounters(plainMgr); got != want {
		t.Errorf("manager stats diverge:\n  cached:   %+v\n  uncached: %+v", got, want)
	}
	if cachedAlloc.Slots != plainAlloc.Slots {
		t.Errorf("final fabric layouts diverge:\n  cached:   %v\n  uncached: %v", cachedAlloc.Slots, plainAlloc.Slots)
	}

	// The cache must actually have been exercised, and every selection
	// accounted as exactly one lookup; the uncached run must never touch
	// it.
	selections := 0
	for _, n := range cachedMgr.Selections {
		selections += n
	}
	if lookups := cachedMgr.CacheHits + cachedMgr.CacheMisses; lookups != selections {
		t.Errorf("cache lookups (%d) != selections (%d)", lookups, selections)
	}
	if cachedMgr.CacheHits == 0 {
		t.Errorf("cached run recorded no hits over %d selections; cache is inert", selections)
	}
	if plainMgr.CacheHits != 0 || plainMgr.CacheMisses != 0 {
		t.Errorf("uncached run recorded lookups: %d hits, %d misses", plainMgr.CacheHits, plainMgr.CacheMisses)
	}
}

// TestSteeringCacheEquivalence replays the X1-X6 full-machine
// workloads (the same phase mixes, seeds and parameter points as
// bench_test.go) with the steering cache on and off.
func TestSteeringCacheEquivalence(t *testing.T) {
	x1 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
		{Mix: workload.MixMemHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
	}, workload.SynthParams{Seed: 7})
	x2 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 7})
	x4 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixFPHeavy, Instructions: 600},
	}, workload.SynthParams{Seed: 5})
	x5 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixUniform, Instructions: 800},
	}, workload.SynthParams{Seed: 3})
	x6 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixFPHeavy, Instructions: 400},
		{Mix: workload.MixIntHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 2})
	fpRich := [arch.NumConfigs - 1]config.Configuration{
		config.MustNew("fp-a", arch.FPALU, arch.FPMDU, arch.IntALU, arch.LSU),
		config.MustNew("fp-b", arch.FPMDU, arch.FPMDU, arch.IntALU, arch.LSU),
		config.MustNew("fp-c", arch.FPALU, arch.FPALU, arch.IntALU, arch.LSU),
	}

	cases := []struct {
		name   string
		prog   isa.Program
		params func() cpu.Params
		basis  [arch.NumConfigs - 1]config.Configuration
		exact  bool
	}{
		{name: "X1Phased", prog: x1, params: cpu.DefaultParams, basis: config.DefaultBasis()},
		{name: "X2ReconfigLatency64", prog: x2, params: func() cpu.Params {
			p := cpu.DefaultParams()
			p.ReconfigLatency = 64
			return p
		}, basis: config.DefaultBasis()},
		{name: "X3ExactCEM", prog: x1, params: cpu.DefaultParams, basis: config.DefaultBasis(), exact: true},
		{name: "X4NoFFU", prog: x4, params: func() cpu.Params {
			p := cpu.DefaultParams()
			p.DisableFFUs = true
			return p
		}, basis: config.DefaultBasis()},
		{name: "X5Window16", prog: x5, params: func() cpu.Params {
			p := cpu.DefaultParams()
			p.WindowSize = 16
			return p
		}, basis: config.DefaultBasis()},
		{name: "X6FPRichBasis", prog: x6, params: cpu.DefaultParams, basis: fpRich},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkEquivalent(t, tc.prog, tc.params(), tc.basis, tc.exact)
		})
	}
}

// TestSteeringCacheSelectionStream drives two managers (cache on/off)
// over the same pseudo-random demand stream, fabric ticks interleaved,
// and asserts every Selection — choice, all four errors, all four
// distances, the echoed requirement vector — is identical, for both
// the approximate and the exact CEM (X3's ablation axis).
func TestSteeringCacheSelectionStream(t *testing.T) {
	for _, exact := range []bool{false, true} {
		name := "approx"
		if exact {
			name = "exact"
		}
		t.Run(name, func(t *testing.T) {
			cachedFabric, plainFabric := rfu.New(8), rfu.New(8)
			cached := core.NewManager(cachedFabric, config.DefaultBasis())
			plain := core.NewManager(plainFabric, config.DefaultBasis())
			cached.ExactCEM = exact
			plain.ExactCEM = exact
			plain.DisableCache = true

			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 5000; i++ {
				var d arch.Counts
				left := arch.QueueSize
				for t := range d {
					v := rng.Intn(left + 1)
					d[t] = v
					left -= v
				}
				a := cached.Select(d)
				b := plain.Select(d)
				if a != b {
					t.Fatalf("step %d: selections diverge for demand %v:\n  cached:   %+v\n  uncached: %+v", i, d, a, b)
				}
				cachedFabric.Tick()
				plainFabric.Tick()
			}
			if cached.Stats().CacheHits == 0 {
				t.Error("cached manager recorded no hits over 5000 selections")
			}
		})
	}
}

// runPrefetch executes prog under the prefetch policy and returns the
// processor stats, the wrapped manager's stats and the final fabric
// allocation, with the steering cache on or off.
func runPrefetch(t *testing.T, prog isa.Program, params cpu.Params, disableCache bool) (cpu.Stats, core.Stats, config.AllocationVector) {
	t.Helper()
	p := cpu.New(prog, params, nil)
	m := predict.NewManager(p.Fabric(), predict.Config{})
	m.Core().DisableCache = disableCache
	p.SetManager(m)
	st, err := p.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return st, m.Core().Stats(), p.Fabric().Allocation()
}

// TestSteeringCacheEquivalenceWithPrefetch extends the equivalence
// property to the prefetch policy: speculative loads mutate the fabric
// allocation — which is part of the packed cache key — so a cached run
// must still replay exactly the uncached decisions when the predictor
// is live. The latency is high enough that speculations actually fire
// (the X20 regime), exercising hold suppression and claw-back paths
// under both cache settings.
func TestSteeringCacheEquivalenceWithPrefetch(t *testing.T) {
	prog := workload.Synthesize(workload.AlternatingPhases(4000, 500), workload.SynthParams{Seed: 7})
	params := cpu.DefaultParams()
	params.ReconfigLatency = 128

	cachedCPU, cachedMgr, cachedAlloc := runPrefetch(t, prog, params, false)
	plainCPU, plainMgr, plainAlloc := runPrefetch(t, prog, params, true)

	if cachedCPU != plainCPU {
		t.Errorf("processor stats diverge:\n  cached:   %+v\n  uncached: %+v", cachedCPU, plainCPU)
	}
	if got, want := stripCacheCounters(cachedMgr), stripCacheCounters(plainMgr); got != want {
		t.Errorf("manager stats diverge:\n  cached:   %+v\n  uncached: %+v", got, want)
	}
	if cachedAlloc.Slots != plainAlloc.Slots {
		t.Errorf("final fabric layouts diverge:\n  cached:   %v\n  uncached: %v", cachedAlloc.Slots, plainAlloc.Slots)
	}
	if cachedMgr.PrefetchIssued == 0 {
		t.Error("no speculative spans issued; the equivalence run did not exercise prefetch")
	}
	if cachedMgr.CacheHits == 0 {
		t.Error("cached run recorded no hits; cache is inert")
	}
}

// TestPrefetchInertMatchesSteering pins the disabled-predictor
// determinism property: when anticipation never engages (cheap
// reconfiguration keeps the participation gate closed), a prefetch-
// policy run is bit-identical to plain steering — same architectural
// stats, same selection stream, same final fabric.
func TestPrefetchInertMatchesSteering(t *testing.T) {
	prog := workload.Synthesize(workload.AlternatingPhases(3000, 250), workload.SynthParams{Seed: 7})
	params := cpu.DefaultParams() // latency 8: 16*8 << phase length, gate closed

	preCPU, preMgr, preAlloc := runPrefetch(t, prog, params, false)
	steerCPU, steerMgr, steerAlloc := runSteering(t, prog, params, config.DefaultBasis(), false, false)

	if preMgr.PrefetchIssued != 0 || preMgr.HeldLoads != 0 {
		t.Fatalf("predictor was not inert: %d spans issued, %d held loads",
			preMgr.PrefetchIssued, preMgr.HeldLoads)
	}
	if preCPU != steerCPU {
		t.Errorf("processor stats diverge:\n  prefetch: %+v\n  steering: %+v", preCPU, steerCPU)
	}
	// The prefetch run's extra counters (phase changes) are its own;
	// everything the steering manager also tracks must match.
	preMgr.PhaseChanges = 0
	steerMgr.PhaseChanges = 0
	if preMgr != steerMgr {
		t.Errorf("manager stats diverge:\n  prefetch: %+v\n  steering: %+v", preMgr, steerMgr)
	}
	if preAlloc.Slots != steerAlloc.Slots {
		t.Errorf("final fabric layouts diverge:\n  prefetch: %v\n  steering: %v", preAlloc.Slots, steerAlloc.Slots)
	}
}
