// Machine-level tests for the span recorder: JSONL schema stability,
// Chrome Trace export on an instrumented prefetch+fault run, flight
// dumps at anomaly triggers, and the pure-observer guarantee that a
// run is bit-identical with the recorder attached or not.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/span"
)

// spanRunParams is the reference campaign for these tests: fault rates
// high enough for repair windows and a phase-alternating workload long
// enough for the prefetch predictor to open speculations, so one run
// exercises every span kind.
func spanRunParams() Params {
	p := DefaultParams()
	p.FaultTransientRate = 0.001
	p.FaultPermanentRate = 0.0001
	p.FaultSeed = 1234
	p.FaultScrubInterval = 32
	return p
}

func spanRunProgram() Program {
	return Synthesize(AlternatingPhases(4000, 250), 7)
}

// instrumentedSpanRun executes the reference campaign with a recorder
// attached and returns both.
func instrumentedSpanRun(t *testing.T, cfg SpanConfig) (*Machine, *span.Recorder) {
	t.Helper()
	m := NewMachine(spanRunProgram(), Options{Params: spanRunParams(), Policy: PolicyPrefetch})
	rec := m.EnableSpans(cfg)
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	return m, rec
}

// TestSpanJSONLSchemaGolden pins the span JSONL schema: the field names
// and JSON types of span and instant records must match
// testdata/span_schema.golden. Downstream tooling parses this stream,
// so adding a field means regenerating the golden file deliberately
// (delete it and re-run with -run SpanJSONLSchemaGolden to print the
// new schema).
func TestSpanJSONLSchemaGolden(t *testing.T) {
	_, rec := instrumentedSpanRun(t, SpanConfig{})
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	schemas := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		kind, _ := row["record"].(string)
		if kind == "" {
			t.Fatalf("row missing record tag: %s", line)
		}
		if _, seen := schemas[kind]; !seen {
			schemas[kind] = schemaOf(row)
		}
	}
	for _, kind := range []string{"span", "instant"} {
		if schemas[kind] == "" {
			t.Fatalf("no %s record in the instrumented run", kind)
		}
	}

	var sb strings.Builder
	sb.WriteString("# Span JSONL schema: field -> JSON type, per record kind.\n")
	sb.WriteString("# Regenerate: delete this file, run go test -run SpanJSONLSchemaGolden,\n")
	sb.WriteString("# and copy the schema the failure prints.\n")
	kinds := make([]string, 0, len(schemas))
	for kind := range schemas {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		fmt.Fprintf(&sb, "[%s]\n%s", kind, schemas[kind])
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "span_schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (current schema below, save it there if this is a new checkout):\n%s\n%v",
			goldenPath, got, err)
	}
	if got != string(want) {
		t.Errorf("span JSONL schema drifted from %s.\ngot:\n%s\nwant:\n%s",
			goldenPath, got, want)
	}
}

// TestSpanChromeTraceEndToEnd runs the instrumented campaign and checks
// the Chrome Trace export: valid JSON, every span kind present, sane
// timestamps, and sequential (non-overlapping) phase spans.
func TestSpanChromeTraceEndToEnd(t *testing.T) {
	m, rec := instrumentedSpanRun(t, SpanConfig{})
	finalCycle := int64(m.Stats().Cycles)

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  *int64 `json:"dur"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}

	byCat := map[string]int{}
	var lastPhaseEnd int64 = -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		byCat[ev.Cat]++
		if ev.TS < 0 {
			t.Errorf("event %s/%s has negative timestamp %d", ev.Cat, ev.Name, ev.TS)
		}
		if ev.Ph == "X" {
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("span %s/%s missing or negative duration", ev.Cat, ev.Name)
				continue
			}
			// The reconfiguration recorded in the final cycles may
			// nominally complete after the halt; everything else must
			// fit inside the run.
			if ev.Cat != "reconfig" && ev.TS+*ev.Dur > finalCycle {
				t.Errorf("span %s/%s ends at %d, past final cycle %d",
					ev.Cat, ev.Name, ev.TS+*ev.Dur, finalCycle)
			}
		}
		if ev.Cat == "phase" {
			if ev.TS < lastPhaseEnd {
				t.Errorf("phase span at %d overlaps previous phase ending %d", ev.TS, lastPhaseEnd)
			}
			lastPhaseEnd = ev.TS + *ev.Dur
		}
	}
	for _, cat := range []string{"reconfig", "repair", "speculation", "phase", "fault", "cache-epoch"} {
		if byCat[cat] == 0 {
			t.Errorf("no %q events in the trace (categories: %v)", cat, byCat)
		}
	}
}

// TestSpanFlightDumpOnTrigger runs with a tight window and a low storm
// threshold so the fault-storm trigger fires mid-run, and checks the
// OnTrigger hook produces a well-formed flight dump.
func TestSpanFlightDumpOnTrigger(t *testing.T) {
	var dump bytes.Buffer
	var reasons []string
	cfg := SpanConfig{
		Window:     256,
		FaultStorm: 1,
		OnTrigger: func(r *span.Recorder, reason string) {
			if len(reasons) == 0 { // dump once, like cmd/rsssim -flight-dump
				if err := r.DumpFlight(&dump, reason); err != nil {
					t.Errorf("DumpFlight: %v", err)
				}
			}
			reasons = append(reasons, reason)
		},
	}
	_, rec := instrumentedSpanRun(t, cfg)
	if rec.Triggers() == 0 || len(reasons) == 0 {
		t.Fatalf("no trigger fired (triggers=%d)", rec.Triggers())
	}
	if reasons[0] != span.TriggerFaultStorm {
		t.Errorf("first trigger = %q, want %q", reasons[0], span.TriggerFaultStorm)
	}
	var d struct {
		Reason  string           `json:"reason"`
		Cycle   int64            `json:"cycle"`
		Entries []map[string]any `json:"entries"`
	}
	if err := json.Unmarshal(dump.Bytes(), &d); err != nil {
		t.Fatalf("flight dump is not valid JSON: %v", err)
	}
	if d.Reason != span.TriggerFaultStorm || len(d.Entries) == 0 {
		t.Errorf("dump = reason %q with %d entries, want fault-storm with entries", d.Reason, len(d.Entries))
	}
}

// TestSpansBitIdentical pins the pure-observer guarantee: the same
// seeded campaign must produce identical statistics and report with the
// recorder attached and without it.
func TestSpansBitIdentical(t *testing.T) {
	run := func(withSpans bool) (Stats, string) {
		m := NewMachine(spanRunProgram(), Options{Params: spanRunParams(), Policy: PolicyPrefetch})
		if withSpans {
			m.EnableSpans(SpanConfig{})
		}
		if _, err := m.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return m.Stats(), m.Report()
	}
	plainStats, plainReport := run(false)
	spanStats, spanReport := run(true)
	if !reflect.DeepEqual(plainStats, spanStats) {
		t.Errorf("stats diverge with spans attached:\nwithout: %+v\nwith:    %+v", plainStats, spanStats)
	}
	if plainReport != spanReport {
		t.Errorf("report diverges with spans attached:\nwithout:\n%s\nwith:\n%s", plainReport, spanReport)
	}
}
