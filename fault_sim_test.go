// Tests for fault injection and degraded-mode operation at the
// full-machine level: determinism of the seeded upset stream, the
// never-dispatch-to-a-faulty-slot safety property across the X1-X6
// workloads, and cached/uncached steering equivalence when the health
// masks join the cache key.
package repro_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/rfu"
	"repro/internal/workload"
)

// faultParams is the reference fault campaign of these tests: rates high
// enough to exercise the whole state machine in a few thousand cycles.
func faultParams() repro.Params {
	p := repro.DefaultParams()
	p.FaultTransientRate = 0.001
	p.FaultPermanentRate = 0.0001
	p.FaultSeed = 1234
	p.FaultScrubInterval = 32
	return p
}

// phasedProgram is the X1-style phase-changing workload the fault tests
// run, long enough for upsets, scrubs and repairs to interleave with
// steering.
func phasedProgram() repro.Program {
	return workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
		{Mix: workload.MixMemHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
	}, workload.SynthParams{Seed: 7})
}

// faultRun executes one seeded fault campaign and returns the telemetry
// JSONL stream (samples, decisions and fault events), the human report
// and the fault counters.
func faultRun(t *testing.T) (jsonl []byte, report string, stats repro.FaultStats) {
	t.Helper()
	m := repro.NewMachine(phasedProgram(), repro.Options{
		Params: faultParams(),
		Policy: repro.PolicySteering,
	})
	var buf bytes.Buffer
	if _, err := m.EnableTelemetry(&buf, "jsonl", 50); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	fs, ok := m.FaultStats()
	if !ok {
		t.Fatal("FaultStats not ok with fault injection enabled")
	}
	return buf.Bytes(), m.Report(), fs
}

// TestFaultDeterminism: the same fault seed and workload reproduce the
// run bit-for-bit — byte-identical telemetry JSONL (fault events
// included) and an identical final report.
func TestFaultDeterminism(t *testing.T) {
	jsonlA, reportA, statsA := faultRun(t)
	jsonlB, reportB, statsB := faultRun(t)
	if !bytes.Equal(jsonlA, jsonlB) {
		t.Error("telemetry JSONL streams differ between identically seeded fault runs")
	}
	if reportA != reportB {
		t.Errorf("reports differ between identically seeded fault runs:\n--- A\n%s--- B\n%s", reportA, reportB)
	}
	if statsA != statsB {
		t.Errorf("fault stats differ: %+v vs %+v", statsA, statsB)
	}
	if statsA.InjectedTransient == 0 {
		t.Error("campaign injected no transient faults; the test exercises nothing")
	}
	if !bytes.Contains(jsonlA, []byte(`"record":"fault"`)) {
		t.Error("telemetry stream contains no fault records")
	}
}

// TestFaultNeverDispatchesToFaultySlot is the safety property of
// degraded mode: across the X1-X6 workload shapes with faults raining
// on the fabric, execution only ever starts on healthy slots. Fault
// injection happens in the fabric tick, before issue, so any slot that
// transitions idle->busy during a cycle must be healthy when the cycle
// ends.
func TestFaultNeverDispatchesToFaultySlot(t *testing.T) {
	x1 := phasedProgram()
	x2 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 7})
	x4 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixFPHeavy, Instructions: 600},
	}, workload.SynthParams{Seed: 5})
	x5 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixUniform, Instructions: 800},
	}, workload.SynthParams{Seed: 3})
	x6 := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixFPHeavy, Instructions: 400},
		{Mix: workload.MixIntHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 2})

	cases := []struct {
		name   string
		prog   repro.Program
		params func() repro.Params
	}{
		{name: "X1Phased", prog: x1, params: faultParams},
		{name: "X2ReconfigLatency64", prog: x2, params: func() repro.Params {
			p := faultParams()
			p.ReconfigLatency = 64
			return p
		}},
		{name: "X4NoFFU", prog: x4, params: func() repro.Params {
			// Transient-only campaign: with the FFUs hidden, enough
			// permanent faults would retire the whole fabric and the
			// workload could never finish — dead slots are forever.
			p := faultParams()
			p.DisableFFUs = true
			p.FaultPermanentRate = 0
			return p
		}},
		{name: "X5Window16", prog: x5, params: func() repro.Params {
			p := faultParams()
			p.WindowSize = 16
			return p
		}},
		{name: "X6HighRate", prog: x6, params: func() repro.Params {
			p := faultParams()
			p.FaultTransientRate = 0.005
			p.FaultPermanentRate = 0.0005
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := repro.NewMachine(tc.prog, repro.Options{
				Params: tc.params(),
				Policy: repro.PolicySteering,
			})
			fab := m.Processor().Fabric()
			var prevBusy [arch.NumRFUSlots]bool
			cycles := 0
			for !m.Halted() && cycles < 2_000_000 {
				m.Cycle()
				cycles++
				for s := 0; s < arch.NumRFUSlots; s++ {
					busy := fab.SlotBusy(s)
					if busy && !prevBusy[s] {
						// A unit headed at s started executing this
						// cycle; its whole span must be healthy.
						enc := fab.Allocation().Slots[s]
						ht, ok := arch.DecodeUnit(enc)
						if !ok {
							t.Fatalf("cycle %d: busy slot %d holds non-unit encoding %v", cycles, s, enc)
						}
						for q := s; q < s+arch.SlotCost(ht); q++ {
							if h := fab.Health(q); h != rfu.HealthHealthy {
								t.Fatalf("cycle %d: execution started on slot %d whose span slot %d is %v",
									cycles, s, q, h)
							}
						}
					}
					prevBusy[s] = busy
				}
			}
			if !m.Halted() {
				t.Fatalf("workload did not complete under faults within %d cycles", cycles)
			}
			if fs, _ := m.FaultStats(); fs.InjectedTransient+fs.InjectedPermanent == 0 {
				t.Logf("note: campaign injected no faults in %d cycles", cycles)
			}
		})
	}
}

// TestFaultSteeringCacheEquivalence: with the health masks folded into
// the packed cache key, cached and uncached steering stay bit-identical
// while faults mask and unmask slots mid-run.
func TestFaultSteeringCacheEquivalence(t *testing.T) {
	base := func() cpu.Params {
		p := faultParams()
		return p
	}
	highRate := func() cpu.Params {
		p := faultParams()
		p.FaultTransientRate = 0.005
		p.FaultPermanentRate = 0.0005
		return p
	}
	cases := []struct {
		name   string
		params func() cpu.Params
	}{
		{name: "BaseRates", params: base},
		{name: "HighRates", params: highRate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkEquivalent(t, phasedProgram(), tc.params(), config.DefaultBasis(), false)
		})
	}
}

// TestFaultSelectionStreamEquivalence mirrors the steering-cache
// selection-stream test with directed fault injection: two fabrics see
// the same upsets while cached and uncached managers must produce
// identical selections at every step.
func TestFaultSelectionStreamEquivalence(t *testing.T) {
	cachedFabric, plainFabric := rfu.New(8), rfu.New(8)
	for _, f := range []*rfu.Fabric{cachedFabric, plainFabric} {
		f.EnableFaults(fault.Plan{Seed: 77, TransientRate: 0.002, PermanentRate: 0.0002, ScrubInterval: 16})
		f.Install(config.DefaultBasis()[0])
	}
	cached := core.NewManager(cachedFabric, config.DefaultBasis())
	plain := core.NewManager(plainFabric, config.DefaultBasis())
	plain.DisableCache = true

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		var d arch.Counts
		left := arch.QueueSize
		for t := range d {
			v := rng.Intn(left + 1)
			d[t] = v
			left -= v
		}
		a := cached.Select(d)
		b := plain.Select(d)
		if a != b {
			t.Fatalf("step %d: selections diverge for demand %v (masks %v vs %v):\n  cached:   %+v\n  uncached: %+v",
				i, d, maskPair(cachedFabric), maskPair(plainFabric), a, b)
		}
		// Occasionally land a directed upset on both fabrics so masked
		// and dead states definitely occur in the stream.
		if i%401 == 0 {
			slot := i / 401 % arch.NumRFUSlots
			perm := i%802 == 0
			cachedFabric.InjectFault(slot, perm)
			plainFabric.InjectFault(slot, perm)
		}
		cachedFabric.Tick()
		plainFabric.Tick()
	}
	if cached.Stats().CacheHits == 0 {
		t.Error("cached manager recorded no hits over 5000 selections")
	}
	if st := cachedFabric.FaultStats(); st.InjectedTransient+st.InjectedPermanent == 0 {
		t.Error("no faults landed in the selection stream")
	}
}

func maskPair(f *rfu.Fabric) [2]uint8 {
	u, d := f.HealthMasks()
	return [2]uint8{u, d}
}
