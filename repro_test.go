package repro

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	prog, err := Assemble(`
		li r1, 10
		li r2, 32
		mul r3, r1, r2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog, Options{Policy: PolicySteering})
	stats, err := m.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reg(3) != 320 {
		t.Errorf("r3 = %d, want 320", m.Reg(3))
	}
	if !m.Halted() || !stats.Halted {
		t.Error("machine not halted")
	}
	if stats.IPC() <= 0 {
		t.Error("IPC not positive")
	}
}

func TestAllPoliciesRunAllKernels(t *testing.T) {
	policies := []Policy{
		PolicySteering, PolicyStaticInteger, PolicyStaticMemory,
		PolicyStaticFloating, PolicyNone, PolicyFullReconfig,
		PolicyOracle, PolicyRandom, PolicyDemand, PolicyPrefetch,
	}
	for _, k := range Kernels() {
		for _, pol := range policies {
			t.Run(k.Name+"/"+pol.String(), func(t *testing.T) {
				params := DefaultParams()
				if pol == PolicyOracle {
					params.ReconfigLatency = 1
				}
				if _, err := RunKernel(k, Options{Params: params, Policy: pol, Seed: 11}, 10_000_000); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, pol := range []Policy{PolicySteering, PolicyNone, PolicyOracle} {
		name := pol.String()
		back, err := ParsePolicy(name)
		if err != nil || back != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, back, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if !strings.HasPrefix(Policy(99).String(), "Policy(") {
		t.Error("unknown policy String format")
	}
}

func TestMemoryAndRegisterAccessors(t *testing.T) {
	prog := MustAssemble(`
		lw r2, 0(r1)
		slli r2, r2, 1
		sw r2, 4(r1)
		halt
	`)
	m := NewMachine(prog, Options{Policy: PolicyNone})
	m.SetReg(1, 256)
	m.WriteWords(256, []uint32{21})
	if _, err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	out := m.ReadWords(260, 1)
	if out[0] != 42 {
		t.Errorf("stored word = %d, want 42", out[0])
	}
}

func TestFRegAccessor(t *testing.T) {
	prog := MustAssemble(`
		li r1, 9
		fcvt.s.w f2, r1
		halt
	`)
	m := NewMachine(prog, Options{Policy: PolicySteering})
	if _, err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	if m.FReg(2) == 0 {
		t.Error("f2 still zero")
	}
}

func TestConfigurationResidency(t *testing.T) {
	prog := Synthesize([]Phase{{Mix: MixFPHeavy, Instructions: 400}}, 1)
	m := NewMachine(prog, Options{Policy: PolicySteering})
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	sel, _, ok := m.ConfigurationResidency()
	if !ok {
		t.Fatal("steering machine reported no residency")
	}
	total := 0
	for _, n := range sel {
		total += n
	}
	if total == 0 {
		t.Error("no selections recorded")
	}
	if sel[3] == 0 {
		t.Error("FP workload never selected the floating configuration")
	}
	// Non-steering machines report ok=false.
	m2 := NewMachine(prog, Options{Policy: PolicyNone})
	if _, _, ok := m2.ConfigurationResidency(); ok {
		t.Error("FFU-only machine reported steering residency")
	}
}

func TestReportJSON(t *testing.T) {
	prog := Synthesize([]Phase{{Mix: MixUniform, Instructions: 200}}, 2)
	m := NewMachine(prog, Options{Policy: PolicySteering})
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if doc["policy"] != "steering" {
		t.Errorf("policy = %v", doc["policy"])
	}
	if doc["ipc"].(float64) <= 0 {
		t.Error("ipc not positive")
	}
	if doc["steering"] != true {
		t.Error("steering flag missing")
	}
	stats := doc["stats"].(map[string]interface{})
	if stats["Retired"].(float64) <= 0 {
		t.Error("retired count missing from stats")
	}
}

func TestReportContainsKeySections(t *testing.T) {
	prog := Synthesize([]Phase{{Mix: MixUniform, Instructions: 300}}, 2)
	m := NewMachine(prog, Options{Policy: PolicySteering})
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	report := m.Report()
	for _, want := range []string{"IPC:", "reconfigs:", "selections:", "final fabric:", "policy:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestAssembleUnitAndRun(t *testing.T) {
	u, err := AssembleUnit(`
		.data 0x2000
	tbl:	.word 5, 7, 11
		.text
		la r1, tbl
		lw r2, 0(r1)
		lw r3, 4(r1)
		lw r4, 8(r1)
		add r5, r2, r3
		add r5, r5, r4
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachineFromUnit(u, Options{Policy: PolicySteering})
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if m.Reg(5) != 23 {
		t.Errorf("sum = %d, want 23", m.Reg(5))
	}
}

func TestExampleProgramsRun(t *testing.T) {
	cases := []struct {
		path  string
		check func(m *Machine) error
	}{
		{"examples/programs/histogram.s", func(m *Machine) error {
			if got := m.Reg(9); got != 32 {
				return fmt.Errorf("histogram sanity sum = %d, want 32", got)
			}
			return nil
		}},
		{"examples/programs/polynomial.s", func(m *Machine) error {
			// y[1] = p(1.0) = 2 - 3 + 4 - 5 = -2.0
			ys := m.ReadWords(0x1000+64+4, 1)
			if got := math.Float32frombits(ys[0]); got != -2.0 {
				return fmt.Errorf("p(1.0) = %v, want -2.0", got)
			}
			return nil
		}},
	}
	for _, c := range cases {
		src, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		u, err := AssembleUnit(string(src))
		if err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		m := NewMachineFromUnit(u, Options{Policy: PolicySteering})
		if _, err := m.Run(1_000_000); err != nil {
			t.Fatalf("%s: %v", c.path, err)
		}
		if err := c.check(m); err != nil {
			t.Errorf("%s: %v", c.path, err)
		}
	}
}

func TestMinResidencyOption(t *testing.T) {
	k := KernelByName("saxpy")
	base, err := RunKernel(k, Options{Policy: PolicySteering}, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	damped, err := RunKernel(k, Options{Policy: PolicySteering, MinResidency: 4}, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if damped.IPC() <= base.IPC() {
		t.Errorf("residency damping did not help saxpy: %.3f vs %.3f", damped.IPC(), base.IPC())
	}
}

func TestManagerLookaheadParam(t *testing.T) {
	k := KernelByName("saxpy")
	params := DefaultParams()
	params.ManagerLookahead = true
	st, err := RunKernel(k, Options{Params: params, Policy: PolicySteering}, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() <= 0.5 {
		t.Errorf("lookahead saxpy IPC = %.3f, expected the recovered ~0.61", st.IPC())
	}
}

func TestCustomBasisRoundTripAndUse(t *testing.T) {
	src := `[
	  {"name": "a", "units": ["IntALU","IntALU","IntALU","IntALU","IntALU","IntALU","IntALU","IntALU"]},
	  {"name": "b", "units": ["LSU","LSU","LSU","LSU","IntALU"]},
	  {"name": "c", "units": ["FPALU","FPMDU","IntALU","LSU"]}
	]`
	basis, err := ParseBasis([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := MarshalBasis(basis)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBasis(out)
	if err != nil || back != basis {
		t.Fatalf("marshal round trip failed: %v", err)
	}

	prog := Synthesize([]Phase{{Mix: MixFPHeavy, Instructions: 400}}, 4)
	m := NewMachine(prog, Options{Policy: PolicySteering, Basis: &basis})
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	sel, _, ok := m.ConfigurationResidency()
	if !ok {
		t.Fatal("no residency")
	}
	if sel[3] == 0 {
		t.Error("custom FP configuration never selected on an FP workload")
	}
	// A custom basis also drives the static policies.
	m2 := NewMachine(prog, Options{Policy: PolicyStaticInteger, Basis: &basis})
	if _, err := m2.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
}

// TestSteeringVersusStaticHeadline is the repo's headline claim in
// miniature: on a phase-alternating workload, steering beats every
// mismatched static configuration.
func TestSteeringVersusStaticHeadline(t *testing.T) {
	prog := Synthesize([]Phase{
		{Mix: MixIntHeavy, Instructions: 500}, {Mix: MixFPHeavy, Instructions: 500}, {Mix: MixMemHeavy, Instructions: 500}, {Mix: MixFPHeavy, Instructions: 500},
	}, 3)
	run := func(pol Policy) float64 {
		m := NewMachine(prog, Options{Policy: pol})
		stats, err := m.Run(10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return stats.IPC()
	}
	steering := run(PolicySteering)
	ffuOnly := run(PolicyNone)
	if steering <= ffuOnly {
		t.Errorf("steering IPC %.3f not above FFU-only IPC %.3f", steering, ffuOnly)
	}
}
