// Benchmarks, one per paper artefact and extension study (see DESIGN.md
// §5): the circuit-level mechanisms behind Table 1 and Figures 2-7, and
// full-machine runs for X1-X6. Simulator benchmarks report IPC and
// simulated Mcycles/s as custom metrics.
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"context"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/arch"
	"repro/internal/avail"
	"repro/internal/baseline"
	"repro/internal/cem"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/hwcost"
	"repro/internal/isa"
	"repro/internal/logic"
	"repro/internal/rfu"
	"repro/internal/span"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wakeup"
	"repro/internal/wide"
	"repro/internal/workload"
)

// --- Table 1: configuration construction and counting -----------------

func BenchmarkTable1ConfigurationCounts(b *testing.B) {
	basis := config.DefaultBasis()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, cfg := range basis {
			_ = cfg.Counts()
		}
	}
}

// --- Figure 2: the four-stage selection unit ---------------------------

func BenchmarkFig2SelectionUnit(b *testing.B) {
	fabric := rfu.New(8)
	m := core.NewManager(fabric, config.DefaultBasis())
	demands := make([]arch.Counts, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range demands {
		left := arch.QueueSize
		for t := range demands[i] {
			v := rng.Intn(left + 1)
			demands[i][t] = v
			left -= v
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Select(demands[i%len(demands)])
	}
}

func BenchmarkFig2SelectionCircuit(b *testing.B) {
	errs := [arch.NumConfigs]int{3, 1, 4, 1}
	dists := [arch.NumConfigs]int{0, 5, 2, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.CircuitMinimalErrorSelect(errs, dists)
	}
}

// --- Figure 3: configuration error metric ------------------------------

func BenchmarkFig3CEMBehavioural(b *testing.B) {
	req := arch.Counts{3, 1, 2, 0, 1}
	av := arch.Counts{5, 2, 3, 1, 1}
	for i := 0; i < b.N; i++ {
		_ = cem.Error(req, av)
	}
}

func BenchmarkFig3CEMExactDivider(b *testing.B) {
	req := arch.Counts{3, 1, 2, 0, 1}
	av := arch.Counts{5, 2, 3, 1, 1}
	for i := 0; i < b.N; i++ {
		_ = cem.ErrorExact(req, av)
	}
}

func BenchmarkFig3CEMGateLevel(b *testing.B) {
	req := arch.Counts{3, 1, 2, 0, 1}
	av := arch.Counts{5, 2, 3, 1, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cem.CircuitError(req, av)
	}
}

// --- Figures 4-6: wake-up array -----------------------------------------

func BenchmarkFig5WakeupArrayCycle(b *testing.B) {
	unitAvail := [arch.NumUnitTypes]bool{}
	for i := range unitAvail {
		unitAvail[i] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a, _ := wakeup.PaperExample()
		b.StartTimer()
		for done := 0; done < 7; {
			for _, r := range a.Requests(unitAvail) {
				a.Grant(r)
				done++
			}
			a.Tick()
		}
	}
}

func BenchmarkFig6RowCircuit(b *testing.B) {
	needUnit := [arch.NumUnitTypes]bool{2: true}
	availUnit := [arch.NumUnitTypes]bool{0: true, 2: true, 4: true}
	depNeed := []bool{true, false, true, false, false, false, true}
	depOK := []bool{true, true, true, false, false, true, true}
	for i := 0; i < b.N; i++ {
		_ = wakeup.CircuitRequest(needUnit, availUnit, depNeed, depOK, false)
	}
}

// --- Figure 7 / Eq. 1: availability ------------------------------------

func BenchmarkFig7AvailabilityBehavioural(b *testing.B) {
	v := config.NewAllocationVector()
	v.Slots = config.DefaultBasis()[0].Layout
	alloc := v.Entries()
	sigs := make([]bool, len(alloc))
	for i := range sigs {
		sigs[i] = i%2 == 0
	}
	for i := 0; i < b.N; i++ {
		_ = avail.AllAvailable(alloc, sigs)
	}
}

func BenchmarkFig7AvailabilityGateLevel(b *testing.B) {
	v := config.NewAllocationVector()
	v.Slots = config.DefaultBasis()[0].Layout
	alloc := v.Entries()
	sigs := make([]bool, len(alloc))
	for i := range sigs {
		sigs[i] = i%2 == 0
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = avail.CircuitAvailable(arch.LSU, alloc, sigs)
	}
}

// --- Full-machine studies ------------------------------------------------

// benchRun runs prog under the policy once per iteration, reporting IPC
// and simulated Mcycles/s.
func benchRun(b *testing.B, prog isa.Program, params cpu.Params, policy cpu.Policy) {
	b.Helper()
	var lastStats cpu.Stats
	totalCycles := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p *cpu.Processor
		switch policy {
		case cpu.PolicySteering:
			p = cpu.New(prog, params, nil)
			p.SetManager(baseline.NewSteering(p.Fabric()))
		case cpu.PolicyStaticInteger:
			p = cpu.New(prog, params, nil)
			p.Fabric().Install(config.DefaultBasis()[0])
		case cpu.PolicyNone:
			p = cpu.New(prog, params, nil)
		case cpu.PolicyFullReconfig:
			p = cpu.New(prog, params, nil)
			p.SetManager(baseline.NewFullReconfig(p.Fabric()))
		case cpu.PolicyOracle:
			op := params
			op.ReconfigLatency = 1
			p = cpu.New(prog, op, nil)
			p.SetManager(baseline.NewOracle(p.Fabric()))
		default:
			b.Fatalf("unknown policy %s", policy)
		}
		st, err := p.Run(50_000_000)
		if err != nil {
			b.Fatal(err)
		}
		lastStats = st
		totalCycles += st.Cycles
	}
	b.StopTimer()
	b.ReportMetric(lastStats.IPC(), "IPC")
	b.ReportMetric(float64(totalCycles)/1e6/b.Elapsed().Seconds(), "Mcycles/s")
}

// Analytic fast path: EstimateIPC on the X1 phased program (exact
// profile) and on a production-scale 1M-instruction program (strided
// sampling). The sampled variant is the /v1/estimate hot path — its
// cost must stay roughly constant in program length.
func BenchmarkEstimate(b *testing.B) {
	pattern := []workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
		{Mix: workload.MixMemHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
	}
	var long []workload.Phase
	for i := 0; i < 500; i++ {
		long = append(long, pattern...)
	}
	for _, tc := range []struct {
		name string
		prog isa.Program
	}{
		{"X1Exact2k", workload.Synthesize(pattern, workload.SynthParams{Seed: 7})},
		{"Sampled1M", workload.Synthesize(long, workload.SynthParams{Seed: 7})},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var est repro.Estimate
			for i := 0; i < b.N; i++ {
				var err error
				est, err = repro.EstimateIPC(tc.prog, repro.Options{Policy: cpu.PolicySteering})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(est.PredictedIPC, "predictedIPC")
		})
	}
}

// X1: steering vs baselines on the phased workload.
func BenchmarkX1Phased(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
		{Mix: workload.MixMemHeavy, Instructions: 500},
		{Mix: workload.MixFPHeavy, Instructions: 500},
	}, workload.SynthParams{Seed: 7})
	for _, policy := range []cpu.Policy{cpu.PolicySteering, cpu.PolicyStaticInteger, cpu.PolicyNone, cpu.PolicyFullReconfig, cpu.PolicyOracle} {
		b.Run(policy.String(), func(b *testing.B) {
			benchRun(b, prog, cpu.DefaultParams(), policy)
		})
	}
}

// X1 (kernels): every library kernel under steering.
func BenchmarkX1Kernels(b *testing.B) {
	for _, k := range workload.Kernels() {
		b.Run(k.Name, func(b *testing.B) {
			prog := k.Program()
			var last cpu.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := cpu.New(prog, cpu.DefaultParams(), nil)
				p.SetManager(baseline.NewSteering(p.Fabric()))
				if k.Setup != nil {
					k.Setup(p.Memory(), p.SetReg)
				}
				st, err := p.Run(50_000_000)
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(last.IPC(), "IPC")
		})
	}
}

// X2: reconfiguration latency sweep.
func BenchmarkX2ReconfigLatency(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 7})
	for _, lat := range []int{1, 8, 64, 256} {
		b.Run(itoa(lat), func(b *testing.B) {
			params := cpu.DefaultParams()
			params.ReconfigLatency = lat
			benchRun(b, prog, params, cpu.PolicySteering)
		})
	}
}

// X3: approximate vs exact CEM inside a live manager.
func BenchmarkX3CEMAblation(b *testing.B) {
	for _, exact := range []bool{false, true} {
		name := "approx"
		if exact {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			fabric := rfu.New(8)
			m := core.NewManager(fabric, config.DefaultBasis())
			m.ExactCEM = exact
			req := arch.Counts{2, 1, 2, 1, 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.Select(req)
			}
		})
	}
}

// X4: the FFU-ablated machine under steering.
func BenchmarkX4NoFFUSteering(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixFPHeavy, Instructions: 600},
	}, workload.SynthParams{Seed: 5})
	params := cpu.DefaultParams()
	params.DisableFFUs = true
	benchRun(b, prog, params, cpu.PolicySteering)
}

// X5: window-size sweep.
func BenchmarkX5Window(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixUniform, Instructions: 800},
	}, workload.SynthParams{Seed: 3})
	for _, w := range []int{4, 7, 16, 32} {
		b.Run(itoa(w), func(b *testing.B) {
			params := cpu.DefaultParams()
			params.WindowSize = w
			benchRun(b, prog, params, cpu.PolicySteering)
		})
	}
}

// X6: alternate steering bases.
func BenchmarkX6Basis(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixFPHeavy, Instructions: 400},
		{Mix: workload.MixIntHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 2})
	bases := map[string][3]config.Configuration{
		"default": config.DefaultBasis(),
		"fp-rich": {
			config.MustNew("fp-a", arch.FPALU, arch.FPMDU, arch.IntALU, arch.LSU),
			config.MustNew("fp-b", arch.FPMDU, arch.FPMDU, arch.IntALU, arch.LSU),
			config.MustNew("fp-c", arch.FPALU, arch.FPALU, arch.IntALU, arch.LSU),
		},
	}
	for name, basis := range bases {
		b.Run(name, func(b *testing.B) {
			var last cpu.Stats
			for i := 0; i < b.N; i++ {
				p := cpu.New(prog, cpu.DefaultParams(), nil)
				m := core.NewManager(p.Fabric(), basis)
				p.SetManager(&baseline.Steering{M: m})
				st, err := p.Run(50_000_000)
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(last.IPC(), "IPC")
		})
	}
}

// X7: demand-driven synthesis manager.
func BenchmarkX7DemandManager(b *testing.B) {
	fabric := rfu.New(8)
	m := core.NewDemandManager(fabric)
	demands := []arch.Counts{
		{4, 1, 2, 0, 0}, {1, 0, 1, 3, 2}, {2, 0, 4, 1, 0}, {2, 2, 1, 1, 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step(demands[i%len(demands)])
		fabric.Tick()
	}
}

// X8: full steering run with per-window sampling (the timeline workload).
func BenchmarkX8TimelineRun(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 7})
	benchRun(b, prog, cpu.DefaultParams(), cpu.PolicySteering)
}

// X9: select-free vs ideal select.
func BenchmarkX9SelectFree(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixMemHeavy, Instructions: 800},
	}, workload.SynthParams{Seed: 10})
	for _, mode := range []string{"ideal", "select-free"} {
		b.Run(mode, func(b *testing.B) {
			params := cpu.DefaultParams()
			params.SelectFree = mode == "select-free"
			benchRun(b, prog, params, cpu.PolicySteering)
		})
	}
}

// HW: netlist construction cost for the full selection unit.
func BenchmarkHWCostSelectionUnit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = hwcost.SelectionUnit()
	}
}

// Trace overhead: the same run with and without event recording.
func BenchmarkTraceOverhead(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixUniform, Instructions: 500},
	}, workload.SynthParams{Seed: 4})
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := cpu.New(prog, cpu.DefaultParams(), nil)
				p.SetManager(baseline.NewSteering(p.Fabric()))
				if traced {
					p.SetTracer(trace.NewBuffer(1 << 16))
				}
				if _, err := p.Run(50_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Telemetry overhead: the X8 timeline workload with the probe absent
// (the nil-sink path every production run without -metrics takes — one
// nil check per event), and with a live probe sampling every 100 cycles
// into an in-memory collector. The "off" case must stay within 2% of
// the pre-telemetry seed (see EXPERIMENTS.md).
func BenchmarkTelemetryOverhead(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 7})
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := cpu.New(prog, cpu.DefaultParams(), nil)
				steer := baseline.NewSteering(p.Fabric())
				p.SetManager(steer)
				if mode == "on" {
					probe := telemetry.NewProbe(100)
					probe.SetExporter(&telemetry.Collector{})
					p.SetTelemetry(probe)
					steer.SetTelemetry(probe)
				}
				if _, err := p.Run(50_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Span-recorder overhead: the same workload with the recorder absent
// (every hook reduces to a nil check) and attached (recording into
// preallocated storage plus the per-window trigger evaluation). Both
// cases must stay within 2% of each other — the recorder is designed
// to be cheap enough to leave on. The workload is deliberately long:
// building a default-size recorder zeroes ~4 MB of preallocated trace
// once per run, which would dominate a millisecond-scale benchmark but
// amortizes to nothing over a realistic campaign.
func BenchmarkSpanOverhead(b *testing.B) {
	prog := workload.Synthesize(workload.AlternatingPhases(60_000, 500),
		workload.SynthParams{Seed: 7})
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := cpu.New(prog, cpu.DefaultParams(), nil)
				steer := baseline.NewSteering(p.Fabric())
				p.SetManager(steer)
				if mode == "on" {
					rec := span.NewRecorder(span.Config{}, arch.NumRFUSlots)
					p.SetSpans(rec)
					steer.SetSpans(rec)
				}
				if _, err := p.Run(50_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Fault-path overhead: the same workload with the injector absent (the
// production default — the fabric tick sees one nil check) and with a
// live transient-fault campaign including scrubbing and repair. The
// "off" case must stay within 2% of the pre-fault seed.
func BenchmarkFaultPathOverhead(b *testing.B) {
	prog := workload.Synthesize([]workload.Phase{
		{Mix: workload.MixIntHeavy, Instructions: 400},
		{Mix: workload.MixFPHeavy, Instructions: 400},
	}, workload.SynthParams{Seed: 7})
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			params := cpu.DefaultParams()
			if mode == "on" {
				params.FaultTransientRate = 0.001
				params.FaultPermanentRate = 0.0001
				params.FaultSeed = 9
			}
			for i := 0; i < b.N; i++ {
				p := cpu.New(prog, params, nil)
				p.SetManager(baseline.NewSteering(p.Fabric()))
				if _, err := p.Run(50_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkAssembler(b *testing.B) {
	k := workload.KernelByName("matmul")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := isa.Assemble(k.Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecodeProgram(b *testing.B) {
	prog := workload.KernelByName("matmul").Program()
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isa.DecodeProgram(words); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalInterpreter(b *testing.B) {
	k := workload.KernelByName("dot")
	prog := k.Program()
	for i := 0; i < b.N; i++ {
		m := repro.NewMachine(prog, repro.Options{Policy: repro.PolicyNone})
		_ = m // machine construction cost included; run below dominates
		s := &isa.State{Mem: m.Processor().Memory()}
		if k.Setup != nil {
			k.Setup(m.Processor().Memory(), s.WriteReg)
		}
		if _, err := isa.Run(prog, s, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogicAdderTree(b *testing.B) {
	ops := make([]logic.Bus, 5)
	for i := range ops {
		ops[i] = logic.BusFromUint(uint64(i+1), 3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = logic.AdderTree(ops...)
	}
}

// --- Wide machine: lane-parallel sweep throughput ---------------------

// sweepProg is the homogeneous 64-point sweep workload: one program,
// seeds 0..63 — the shape sweep.RunBatch groups onto wide-machine
// lanes.
func sweepProg() repro.Program {
	return repro.Synthesize(repro.AlternatingPhases(3000, 250), 7)
}

func sweepOptions(seed int64) repro.Options {
	return repro.Options{
		Params: repro.DefaultParams(),
		Policy: repro.PolicySteering,
		Seed:   seed,
	}
}

// BenchmarkScalarSweep64 is the pre-wide baseline: 64 points simulated
// one after another on a single goroutine, the way a naive sweep loop
// runs a grid. Compare Mcycles/s against BenchmarkWideSweep64.
func BenchmarkScalarSweep64(b *testing.B) {
	prog := sweepProg()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 64; s++ {
			m := repro.NewMachine(prog, sweepOptions(int64(s)))
			st, err := m.Run(2_000_000)
			if err != nil {
				b.Fatal(err)
			}
			total += st.Cycles
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "Mcycles/s")
}

// BenchmarkWideSweep64 runs the same 64-point sweep through
// sweep.RunBatch: points grouped 8 to a wide machine, groups spread
// over GOMAXPROCS workers — the path rssd's executor and rsssim -lanes
// take. Results are bit-identical to the scalar baseline (see
// widemachine_test.go); only the aggregate cycles/sec changes.
func BenchmarkWideSweep64(b *testing.B) {
	prog := sweepProg()
	ctx := context.Background()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycles, err := sweep.RunBatch(ctx, 64, 0, 8,
			func(int) string { return "homogeneous" },
			func(ctx context.Context, idxs []int) []int {
				lanes := make([]wide.Lane, len(idxs))
				for j, idx := range idxs {
					lanes[j] = wide.Lane{M: repro.NewMachine(prog, sweepOptions(int64(idx))), MaxCycles: 2_000_000}
				}
				w := wide.New(lanes)
				results, _ := w.RunContext(ctx)
				out := make([]int, len(results))
				for j, r := range results {
					if r.Err != nil {
						b.Error(r.Err)
					}
					out[j] = r.Stats.Cycles
				}
				return out
			})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cycles {
			total += c
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/1e6/b.Elapsed().Seconds(), "Mcycles/s")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
