// Zero-allocation regression tests for the per-cycle fast path (see
// ARCHITECTURE.md §10). Each test pins a hot function at 0 allocs/op
// with testing.AllocsPerRun so an accidental escape or slice regrowth
// fails CI instead of silently eroding simulator throughput. The race
// detector instruments allocations, so these skip under -race; CI runs
// them in a dedicated non-race step.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/baseline"
	"repro/internal/cem"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/predict"
	"repro/internal/rfu"
	"repro/internal/span"
)

// fig2Demands mirrors BenchmarkFig2SelectionUnit's demand stream: 64
// pseudo-random requirement vectors summing to at most the queue size.
func fig2Demands() []arch.Counts {
	demands := make([]arch.Counts, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range demands {
		left := arch.QueueSize
		for t := range demands[i] {
			v := rng.Intn(left + 1)
			demands[i][t] = v
			left -= v
		}
	}
	return demands
}

func requireZeroAllocs(t *testing.T, what string, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts are inflated by the race detector")
	}
	if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", what, allocs)
	}
}

func TestZeroAllocManagerSelect(t *testing.T) {
	m := core.NewManager(rfu.New(8), config.DefaultBasis())
	demands := fig2Demands()
	// Warm the steering cache and any lazily sized scratch.
	for _, d := range demands {
		_ = m.Select(d)
	}
	i := 0
	requireZeroAllocs(t, "core.Manager.Select (cached)", func() {
		_ = m.Select(demands[i%len(demands)])
		i++
	})

	// The miss path (CEM generators + gate-level selection) must be
	// allocation-free too: disabling the cache forces it every call.
	m.DisableCache = true
	requireZeroAllocs(t, "core.Manager.Select (uncached)", func() {
		_ = m.Select(demands[i%len(demands)])
		i++
	})
}

func TestZeroAllocCEM(t *testing.T) {
	req := arch.Counts{3, 1, 2, 0, 1}
	av := arch.Counts{5, 2, 3, 1, 1}
	requireZeroAllocs(t, "cem.Error", func() {
		_ = cem.Error(req, av)
	})
	requireZeroAllocs(t, "cem.CircuitError", func() {
		_ = cem.CircuitError(req, av)
	})
}

func TestZeroAllocCircuitMinimalErrorSelect(t *testing.T) {
	errs := [arch.NumConfigs]int{3, 1, 4, 1}
	dists := [arch.NumConfigs]int{0, 5, 2, 8}
	requireZeroAllocs(t, "core.CircuitMinimalErrorSelect", func() {
		_ = core.CircuitMinimalErrorSelect(errs, dists)
	})
}

// steadyLoop is an endless-for-test-purposes loop mixing integer,
// multiply, load/store and FP work so the steady-state cycle exercises
// fetch, dispatch, wake-up, execution (including the memory shim),
// branch resolution and steering — every subsystem the fast path spans.
const steadyLoop = `
	li r10, 0x1000
	li r1, 0
	li r2, 100000000
	li r4, 3
	fcvt.s.w f1, r4
loop:
	addi r1, r1, 1
	mul r3, r1, r2
	sw r3, 0(r10)
	lw r5, 0(r10)
	add r6, r5, r3
	fmul f2, f1, f1
	fadd f3, f2, f1
	bne r1, r2, loop
	halt
`

func TestZeroAllocMachineCycle(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated by the race detector")
	}
	prog, err := isa.Assemble(steadyLoop)
	if err != nil {
		t.Fatal(err)
	}
	p := cpu.New(prog, cpu.DefaultParams(), nil)
	p.SetManager(baseline.NewSteering(p.Fabric()))
	// Warm up: fill the trace cache, grow the fetch buffer and scratch
	// slices to their steady-state capacities, and converge the steering
	// cache. The loop body is far longer than the measured window, so
	// the program cannot halt mid-measurement.
	for i := 0; i < 50_000 && !p.Halted(); i++ {
		p.Cycle()
	}
	if p.Halted() {
		t.Fatal("workload halted during warm-up; steady-state cycles unmeasurable")
	}
	if allocs := testing.AllocsPerRun(2000, p.Cycle); allocs != 0 {
		t.Errorf("steady-state Machine cycle: %.2f allocs/op, want 0", allocs)
	}
}

// TestZeroAllocMachineCycleWithFaults pins the fault-injection path:
// the per-cycle draw loop, scrub countdown, repair scheduler and health
// mask recomputation all run over fixed-size arrays and must not
// allocate either. (The disabled path — injector nil — is pinned by
// TestZeroAllocMachineCycle above.)
func TestZeroAllocMachineCycleWithFaults(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated by the race detector")
	}
	prog, err := isa.Assemble(steadyLoop)
	if err != nil {
		t.Fatal(err)
	}
	params := cpu.DefaultParams()
	params.FaultTransientRate = 0.001
	params.FaultSeed = 9
	p := cpu.New(prog, params, nil)
	p.SetManager(baseline.NewSteering(p.Fabric()))
	for i := 0; i < 50_000 && !p.Halted(); i++ {
		p.Cycle()
	}
	if p.Halted() {
		t.Fatal("workload halted during warm-up; steady-state cycles unmeasurable")
	}
	if allocs := testing.AllocsPerRun(2000, p.Cycle); allocs != 0 {
		t.Errorf("steady-state cycle with faults enabled: %.2f allocs/op, want 0", allocs)
	}
}

// TestZeroAllocMachineCycleWithSpans pins the instrumented cycle path:
// with a span recorder attached (and faults injecting so the fault and
// repair hooks actually fire), recording goes into preallocated storage
// and the steady-state cycle must still not allocate. (The recorder-nil
// path is pinned by TestZeroAllocMachineCycle above: the hooks reduce
// to one predictable branch.)
func TestZeroAllocMachineCycleWithSpans(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated by the race detector")
	}
	prog, err := isa.Assemble(steadyLoop)
	if err != nil {
		t.Fatal(err)
	}
	params := cpu.DefaultParams()
	params.FaultTransientRate = 0.001
	params.FaultSeed = 9
	p := cpu.New(prog, params, nil)
	mgr := predict.NewManager(p.Fabric(), predict.Config{})
	p.SetManager(mgr)
	rec := span.NewRecorder(span.Config{}, arch.NumRFUSlots)
	p.SetSpans(rec)
	mgr.SetSpans(rec)
	for i := 0; i < 50_000 && !p.Halted(); i++ {
		p.Cycle()
	}
	if p.Halted() {
		t.Fatal("workload halted during warm-up; steady-state cycles unmeasurable")
	}
	if allocs := testing.AllocsPerRun(2000, p.Cycle); allocs != 0 {
		t.Errorf("steady-state cycle with span recorder: %.2f allocs/op, want 0", allocs)
	}
	if len(rec.Entries()) == 0 {
		t.Error("span recorder captured nothing; the instrumented path was not exercised")
	}
}

// TestZeroAllocMachineCycleWithPrefetch pins the prediction path: the
// demand-history ring, phase detector, Markov update and speculation
// gates run every cycle under the prefetch policy and must not
// allocate once the manager's scratch buffers have grown.
func TestZeroAllocMachineCycleWithPrefetch(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are inflated by the race detector")
	}
	prog, err := isa.Assemble(steadyLoop)
	if err != nil {
		t.Fatal(err)
	}
	p := cpu.New(prog, cpu.DefaultParams(), nil)
	p.SetManager(predict.NewManager(p.Fabric(), predict.Config{}))
	for i := 0; i < 50_000 && !p.Halted(); i++ {
		p.Cycle()
	}
	if p.Halted() {
		t.Fatal("workload halted during warm-up; steady-state cycles unmeasurable")
	}
	if allocs := testing.AllocsPerRun(2000, p.Cycle); allocs != 0 {
		t.Errorf("steady-state cycle with prefetch policy: %.2f allocs/op, want 0", allocs)
	}
}
