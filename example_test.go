package repro_test

import (
	"fmt"

	"repro"
)

// The basic flow: assemble, run on the steering machine, read a result.
func ExampleNewMachine() {
	prog := repro.MustAssemble(`
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		halt
	`)
	m := repro.NewMachine(prog, repro.Options{Policy: repro.PolicySteering})
	if _, err := m.Run(100000); err != nil {
		panic(err)
	}
	fmt.Println("r3 =", m.Reg(3))
	// Output: r3 = 42
}

// Self-contained programs carry their data in .data sections; la loads
// label addresses.
func ExampleAssembleUnit() {
	u, err := repro.AssembleUnit(`
		.data 0x1000
	nums:	.word 10, 20, 30
		.text
		la r1, nums
		lw r2, 0(r1)
		lw r3, 4(r1)
		lw r4, 8(r1)
		add r5, r2, r3
		add r5, r5, r4
		halt
	`)
	if err != nil {
		panic(err)
	}
	m := repro.NewMachineFromUnit(u, repro.Options{Policy: repro.PolicySteering})
	if _, err := m.Run(100000); err != nil {
		panic(err)
	}
	fmt.Println("sum =", m.Reg(5))
	// Output: sum = 60
}

// Kernels from the benchmark library validate their own outputs.
func ExampleRunKernel() {
	k := repro.KernelByName("dot")
	stats, err := repro.RunKernel(k, repro.Options{Policy: repro.PolicySteering}, 10_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("validated:", stats.Halted)
	// Output: validated: true
}

// Synthetic workloads give the steering manager phase structure to chase.
func ExampleSynthesize() {
	prog := repro.Synthesize([]repro.Phase{
		{Mix: repro.MixIntHeavy, Instructions: 100},
		{Mix: repro.MixFPHeavy, Instructions: 100},
	}, 1)
	m := repro.NewMachine(prog, repro.Options{Policy: repro.PolicySteering})
	if _, err := m.Run(1_000_000); err != nil {
		panic(err)
	}
	fmt.Println("halted:", m.Halted())
	// Output: halted: true
}

// Steering bases are plain JSON; parse, use, or marshal your own.
func ExampleParseBasis() {
	basis, err := repro.ParseBasis([]byte(`[
		{"name": "a", "units": ["IntALU","IntALU","LSU"]},
		{"name": "b", "units": ["FPALU","IntALU"]},
		{"name": "c", "units": ["IntMDU","LSU","LSU"]}
	]`))
	if err != nil {
		panic(err)
	}
	fmt.Println(basis[0].Name, basis[1].Name, basis[2].Name)
	// Output: a b c
}
