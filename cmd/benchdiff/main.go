// Command benchdiff compares a fresh `go test -bench` run against a
// committed perf-trajectory datapoint (a BENCH_<date>.json written by
// cmd/benchjson) and fails when ns/op regresses beyond a threshold —
// the CI gate that keeps the zero-allocation cycle loop and the
// selection-unit fast path from eroding silently.
//
// Usage:
//
//	go test -run '^$' -bench Fig2 -benchmem . | benchdiff -baseline BENCH_2026-08-06.json
//	benchdiff -baseline BENCH_2026-08-06.json -in bench.out -threshold 15
//	benchdiff -baseline BENCH_2026-08-06.json -in bench.out -require Fig2SelectionUnit,Fig3CEMBehavioural
//
// Benchmarks present in only one side are warned about and skipped,
// never fatal: suites grow (fresh-only names print as NEW) and gates
// often run a -bench subset of the committed file (baseline-only names
// print as SKIP). Even zero overlap only warns — -require names
// benchmarks that must appear in the fresh run, so a gate that must
// compare something cannot silently pass because its subject was
// renamed away. Exit status: 0 clean, 1 regression or missing required
// benchmark, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/benchfmt"
)

// baselineDoc is the subset of cmd/benchjson's document benchdiff needs.
type baselineDoc struct {
	Date    string            `json:"date"`
	Results []benchfmt.Result `json:"results"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed BENCH_<date>.json to compare against (required)")
		inPath       = flag.String("in", "-", "fresh `go test -bench` output to parse (\"-\" for stdin)")
		threshold    = flag.Float64("threshold", 15, "maximum allowed ns/op regression in percent")
		require      = flag.String("require", "", "comma-separated benchmark names (without the Benchmark prefix) that must appear in the fresh run")
	)
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline is required")
		flag.Usage()
		os.Exit(2)
	}
	if *threshold <= 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: -threshold must be positive, got %g\n", *threshold)
		os.Exit(2)
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := readFresh(*inPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in input")
		os.Exit(2)
	}

	failed := false
	for _, name := range splitList(*require) {
		full := "Benchmark" + name
		if _, ok := fresh[full]; !ok {
			fmt.Printf("MISSING  %-45s required benchmark absent from fresh run\n", full)
			failed = true
		}
	}

	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	compared := 0
	for _, name := range names {
		cur := fresh[name]
		ref, ok := base[name]
		if !ok {
			fmt.Printf("NEW      %-45s %10.1f ns/op (no baseline)\n", name, cur.NsPerOp)
			continue
		}
		if ref.NsPerOp <= 0 {
			continue
		}
		compared++
		pct := 100 * (cur.NsPerOp - ref.NsPerOp) / ref.NsPerOp
		switch {
		case pct > *threshold:
			fmt.Printf("REGRESS  %-45s %10.1f -> %10.1f ns/op  %+6.1f%% (limit %+.0f%%)\n",
				name, ref.NsPerOp, cur.NsPerOp, pct, *threshold)
			failed = true
		default:
			fmt.Printf("ok       %-45s %10.1f -> %10.1f ns/op  %+6.1f%%\n",
				name, ref.NsPerOp, cur.NsPerOp, pct)
		}
	}
	// Baseline benchmarks the fresh run did not exercise: a -bench
	// subset or a renamed suite. Warn and skip; -require is the strict
	// form when a particular comparison must not vanish.
	baseOnly := make([]string, 0, len(base))
	for name := range base {
		if _, ok := fresh[name]; !ok {
			baseOnly = append(baseOnly, name)
		}
	}
	sort.Strings(baseOnly)
	for _, name := range baseOnly {
		fmt.Printf("SKIP     %-45s in baseline only; not compared\n", name)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: warning: no benchmark in the fresh run matches the baseline; nothing compared")
	}
	if failed {
		fmt.Printf("\nFAIL: ns/op regression beyond %.0f%% against %s\n", *threshold, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("\nPASS: %d benchmark(s) within %.0f%% of %s\n", compared, *threshold, *baselinePath)
}

// readBaseline loads a BENCH_<date>.json and indexes its results by name.
func readBaseline(path string) (map[string]benchfmt.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc baselineDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	out := make(map[string]benchfmt.Result, len(doc.Results))
	for _, r := range doc.Results {
		out[r.Name] = r
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s holds no benchmark results", path)
	}
	return out, nil
}

// readFresh parses `go test -bench` output by name. Duplicate names
// (e.g. -count > 1) keep the fastest run, damping scheduler noise.
func readFresh(path string) (map[string]benchfmt.Result, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	results, err := benchfmt.Parse(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]benchfmt.Result, len(results))
	for _, res := range results {
		if prev, ok := out[res.Name]; !ok || res.NsPerOp < prev.NsPerOp {
			out[res.Name] = res
		}
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
