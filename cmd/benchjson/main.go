// Command benchjson runs the repo's benchmark suite and emits a
// machine-readable perf datapoint: BENCH_<date>.json with ns/op,
// B/op, allocs/op and the custom metrics the full-machine benchmarks
// report (IPC, simulated Mcycles/s). Committed datapoints form the
// perf trajectory future optimisation PRs are measured against.
//
// Usage:
//
//	benchjson                         # run `go test -bench . -benchmem`, write BENCH_<date>.json
//	benchjson -bench Fig2 -o -        # subset, JSON to stdout
//	benchjson -in bench.out           # parse previously captured output instead of running
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"

	"repro/internal/benchfmt"
)

type document struct {
	Date      string            `json:"date"`
	GoOS      string            `json:"goos"`
	GoArch    string            `json:"goarch"`
	GoVersion string            `json:"goVersion"`
	Bench     string            `json:"bench"`
	Benchtime string            `json:"benchtime,omitempty"`
	Results   []benchfmt.Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark selection regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (empty: go test's default)")
		count     = flag.Int("count", 1, "go test -count value")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		in        = flag.String("in", "", "parse this previously captured `go test -bench` output file instead of running (\"-\" for stdin)")
		out       = flag.String("o", "", "output path (default BENCH_<date>.json; \"-\" for stdout)")
	)
	flag.Parse()
	if err := run(*bench, *benchtime, *count, *pkg, *in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime string, count int, pkg, in, out string) error {
	var raw []byte
	var err error
	switch {
	case in == "-":
		raw, err = io.ReadAll(os.Stdin)
		if err != nil {
			return fmt.Errorf("reading stdin: %w", err)
		}
	case in != "":
		raw, err = os.ReadFile(in)
		if err != nil {
			return err
		}
	default:
		raw, err = runBenchmarks(bench, benchtime, count, pkg)
		if err != nil {
			return err
		}
	}

	results, err := benchfmt.Parse(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results in output (selection %q)", bench)
	}

	date := time.Now().Format("2006-01-02")
	doc := document{
		Date:      date,
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		Bench:     bench,
		Benchtime: benchtime,
		Results:   results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')

	if out == "" {
		out = "BENCH_" + date + ".json"
	}
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), out)
	return nil
}

// runBenchmarks shells out to `go test`; benchmark noise goes to our
// stderr so failures are diagnosable, results come back for parsing.
func runBenchmarks(bench, benchtime string, count int, pkg string) ([]byte, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-count", fmt.Sprint(count)}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %v: %w", args, err)
	}
	return stdout.Bytes(), nil
}
