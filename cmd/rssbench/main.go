// Command rssbench orchestrates a policy × reconfiguration-latency ×
// seed sweep over an rssd cluster and renders the result as an
// EXPERIMENTS-ready markdown IPC table. It is the jobs-API showcase:
// the grid goes up as one durable job (POST /v1/jobs), progress is
// followed live over the events stream, and per-point failures land in
// the table as holes instead of aborting the run.
//
// Usage:
//
//	rssbench -addr http://127.0.0.1:8080
//	rssbench -policies steering,demand,oracle -latencies 4,8,16 -seeds 7,8
//	rssbench -program prog.s -max-cycles 2000000 -o table.md
//
// Without -program it synthesizes the paper's phase-alternating
// workload (deterministic for a given -synth-seed), so a bare rssbench
// against a fresh rssd produces a meaningful table.
//
// The grid is ordered seed-innermost on purpose: points of one
// policy × latency cell differ only by seed, which is exactly the
// lane-compatibility rule of rssd's wide machine, so the server batches
// each cell's seed replicas onto the lanes of one simulator pass (see
// rssd's -batch-lanes). Results are unaffected — lane runs are
// bit-identical to scalar runs — only throughput changes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/cluster"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "rssd base URL")
		program   = flag.String("program", "", "assembly source file (empty: synthesize a phased workload)")
		synthLen  = flag.Int("synth-len", 4000, "synthetic workload length in instructions")
		synthPer  = flag.Int("synth-period", 500, "synthetic workload phase period")
		synthSeed = flag.Int64("synth-seed", 7, "synthetic workload generator seed")
		policies  = flag.String("policies", "steering,demand,prefetch,full-reconfig,ffu-only", "comma-separated policy names")
		latencies = flag.String("latencies", "4,8,16", "comma-separated reconfiguration latencies (cycles)")
		seeds     = flag.String("seeds", "7", "comma-separated simulation seeds (averaged per cell)")
		maxCycles = flag.Int("max-cycles", 0, "cycle budget per point (0: server default)")
		pointTO   = flag.Duration("point-timeout", 30*time.Second, "per-point simulation deadline")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall deadline for the sweep")
		label     = flag.String("label", "rssbench", "job label")
		outPath   = flag.String("o", "-", "markdown output path ('-' for stdout)")
		jsonlPath = flag.String("jsonl", "", "also dump raw per-point results as JSONL here")
		quiet     = flag.Bool("q", false, "suppress per-point progress on stderr")
		pruneF    = flag.Float64("prune-frontier", 0, "rank the grid with the analytic queueing model first and submit only the top fraction F in (0,1]; 0 submits everything")
		coresCSV  = flag.String("cores", "1", "comma-separated cluster core counts (grid dimension; 1 = scalar)")
		cmodesCSV = flag.String("cluster-modes", "merged", "comma-separated cluster modes for multi-core points (merged,split)")
		carb      = flag.String("cluster-arbiter", "", "cluster arbiter for multi-core points (round-robin, demand-weighted)")
	)
	flag.Parse()
	if *pruneF < 0 || *pruneF > 1 {
		fmt.Fprintf(os.Stderr, "rssbench: -prune-frontier must be in [0,1], got %g\n", *pruneF)
		os.Exit(1)
	}
	dims := clusterDims{coresCSV: *coresCSV, modesCSV: *cmodesCSV, arbiter: *carb}
	if err := run(*addr, *program, *synthLen, *synthPer, *synthSeed, *policies, *latencies,
		*seeds, *maxCycles, *pointTO, *timeout, *label, *outPath, *jsonlPath, *quiet, *pruneF, dims); err != nil {
		fmt.Fprintln(os.Stderr, "rssbench:", err)
		os.Exit(1)
	}
}

// clusterDims carries the optional cluster dimensions of the grid: the
// core counts to sweep and, for multi-core points, the fabric-sharing
// mode(s) and arbiter. Scalar points (cores = 1) ignore mode and
// arbiter so a mixed grid never duplicates identical K=1 cells.
type clusterDims struct {
	coresCSV string
	modesCSV string
	arbiter  string
}

// expand parses and validates the cluster dimensions. For cores == 1 the
// mode list collapses to the single empty mode.
func (d clusterDims) expand() (cores []int, modes []string, err error) {
	cores, err = splitInts(d.coresCSV)
	if err != nil {
		return nil, nil, fmt.Errorf("parsing -cores: %w", err)
	}
	for _, c := range cores {
		if c < 1 || c > cluster.MaxCores {
			return nil, nil, fmt.Errorf("-cores value %d outside [1,%d]", c, cluster.MaxCores)
		}
	}
	modes, err = splitNames(d.modesCSV)
	if err != nil {
		return nil, nil, fmt.Errorf("parsing -cluster-modes: %w", err)
	}
	for _, m := range modes {
		if _, err := cluster.ParseMode(m); err != nil {
			return nil, nil, err
		}
	}
	if _, err := cluster.ParseArbiter(d.arbiter); err != nil {
		return nil, nil, err
	}
	return cores, modes, nil
}

// gridPoint remembers which cell of the table a job point belongs to.
type gridPoint struct {
	policy  string
	latency int
	seed    int64
	cores   int
	mode    string // cluster mode; empty for scalar points
}

// row is the table row label: the policy, qualified by the cluster
// shape when the grid sweeps more than the scalar machine.
func (g gridPoint) row(scalarOnly bool) string {
	if scalarOnly {
		return g.policy
	}
	if g.cores == 1 {
		return g.policy + " (K=1)"
	}
	return fmt.Sprintf("%s (K=%d, %s)", g.policy, g.cores, g.mode)
}

func run(addr, program string, synthLen, synthPer int, synthSeed int64,
	policyCSV, latencyCSV, seedCSV string, maxCycles int,
	pointTO, timeout time.Duration, label, outPath, jsonlPath string, quiet bool, pruneF float64,
	dims clusterDims) error {

	policyNames, err := splitNames(policyCSV)
	if err != nil {
		return err
	}
	lats, err := splitInts(latencyCSV)
	if err != nil {
		return fmt.Errorf("parsing -latencies: %w", err)
	}
	seeds, err := splitInts(seedCSV)
	if err != nil {
		return fmt.Errorf("parsing -seeds: %w", err)
	}
	coreCounts, cmodes, err := dims.expand()
	if err != nil {
		return err
	}
	scalarOnly := len(coreCounts) == 1 && coreCounts[0] == 1
	if pruneF > 0 && !scalarOnly {
		return fmt.Errorf("-prune-frontier only ranks scalar grids; drop it or set -cores 1")
	}

	// Resolve the program: a source file, or the synthesized
	// phase-alternating workload encoded to binary words.
	req := api.JobRequest{Label: label, PointTimeoutMs: int(pointTO / time.Millisecond)}
	// localProg is the decoded instruction stream, kept for the analytic
	// pruning pass — the same stream the server will simulate.
	var localProg repro.Program
	switch {
	case program != "":
		src, err := os.ReadFile(program)
		if err != nil {
			return err
		}
		req.Source = string(src)
		if pruneF > 0 {
			unit, err := repro.AssembleUnit(string(src))
			if err != nil {
				return err
			}
			localProg = unit.Program
		}
	default:
		prog := repro.Synthesize(repro.AlternatingPhases(synthLen, synthPer), synthSeed)
		words, err := repro.EncodeProgram(prog)
		if err != nil {
			return fmt.Errorf("encoding synthetic workload: %w", err)
		}
		req.Words = words
		localProg = prog
	}

	// Build the grid in deterministic order: policy-major, then latency,
	// then seed — the point index maps back through the same order, and
	// seed-innermost keeps each cell's replicas adjacent so the server
	// can batch them onto one wide machine.
	var grid []gridPoint
	for _, pname := range policyNames {
		p, err := repro.ParsePolicy(pname)
		if err != nil {
			return err
		}
		for _, nc := range coreCounts {
			// A scalar point has no fabric-sharing mode; collapsing the
			// mode list keeps K=1 from appearing once per mode.
			pointModes := cmodes
			if nc == 1 {
				pointModes = []string{""}
			}
			for _, cmode := range pointModes {
				for _, lat := range lats {
					for _, seed := range seeds {
						grid = append(grid, gridPoint{policy: pname, latency: lat, seed: int64(seed), cores: nc, mode: cmode})
						params := repro.Params{ReconfigLatency: lat}
						if nc > 1 {
							params.Cores = nc
							params.ClusterMode = cmode
							params.ClusterArbiter = dims.arbiter
						}
						req.Points = append(req.Points, api.RunSpec{
							Policy:    p,
							Params:    params,
							MaxCycles: maxCycles,
							Seed:      int64(seed),
						})
					}
				}
			}
		}
	}

	// Model-guided pruning: rank every grid point with the analytic
	// queueing model (microseconds per point, no server involved) and
	// submit only the top frontier as the durable job. Dropped cells show
	// up as holes in the table — pruning is loud, never silent.
	fullN := len(grid)
	var predicted map[int]float64
	if pruneF > 0 {
		var err error
		if grid, req.Points, predicted, err = pruneGrid(localProg, grid, req.Points, pruneF); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "rssbench: model-pruned grid %d -> %d points (frontier %.2f)\n",
			fullN, len(grid), pruneF)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c := client.New(addr)
	created, err := c.SubmitJob(ctx, req)
	if err != nil {
		return fmt.Errorf("submitting job: %w", err)
	}
	fmt.Fprintf(os.Stderr, "rssbench: job %s submitted (%d points)\n", created.ID, created.Total)

	done := 0
	status, err := c.WaitJob(ctx, created.ID, func(ev api.JobEvent) {
		if ev.Type != api.EventPoint || ev.Point == nil {
			return
		}
		done++
		if quiet {
			return
		}
		g := grid[ev.Point.Index]
		outcome := "ok"
		if ev.Point.Error != nil {
			outcome = ev.Point.Error.Code
		}
		shape := ""
		if g.cores > 1 {
			shape = fmt.Sprintf(" K=%d/%s", g.cores, g.mode)
		}
		fmt.Fprintf(os.Stderr, "rssbench: [%d/%d] %s%s lat=%d seed=%d on %s: %s\n",
			done, created.Total, g.policy, shape, g.latency, g.seed, ev.Point.Worker, outcome)
	})
	if err != nil {
		return fmt.Errorf("waiting for job %s: %w", created.ID, err)
	}
	if status.State != api.JobDone {
		return fmt.Errorf("job %s ended %s with %d/%d points", created.ID, status.State, status.Done, status.Total)
	}

	if jsonlPath != "" {
		if err := dumpJSONL(jsonlPath, status.Points); err != nil {
			return err
		}
	}
	table, failed := renderTable(grid, status.Points, scalarOnly, lats, len(seeds))
	if pruneF > 0 {
		agreement := rankAgreement(grid, status.Points, predicted)
		table += fmt.Sprintf("\nModel-pruned frontier %.2f: %d of %d grid points simulated; %s\n",
			pruneF, len(grid), fullN, agreement)
		fmt.Fprintf(os.Stderr, "rssbench: %s\n", agreement)
	}
	if err := writeOut(outPath, table); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d points failed (holes in the table)", failed, len(grid))
	}
	return nil
}

// pruneGrid ranks the whole grid with the analytic queueing model and
// keeps the top fraction f, preserving the original (seed-innermost)
// point order so the server's wide-machine batching still applies. It
// returns the kept grid, the matching specs, and the model's predicted
// IPC keyed by the new point index.
func pruneGrid(prog repro.Program, grid []gridPoint, specs []api.RunSpec, f float64) ([]gridPoint, []api.RunSpec, map[int]float64, error) {
	type ranked struct {
		idx int
		ipc float64
	}
	ranks := make([]ranked, len(specs))
	for i, spec := range specs {
		est, err := repro.EstimateIPC(prog, repro.Options{Params: spec.Params, Policy: spec.Policy})
		if err != nil {
			return nil, nil, nil, fmt.Errorf("estimating point %d (%s lat=%d): %w",
				i, grid[i].policy, grid[i].latency, err)
		}
		ranks[i] = ranked{idx: i, ipc: est.PredictedIPC}
	}
	byIPC := append([]ranked(nil), ranks...)
	sort.SliceStable(byIPC, func(i, j int) bool { return byIPC[i].ipc > byIPC[j].ipc })
	k := int(math.Ceil(f * float64(len(byIPC))))
	if k < 1 {
		k = 1
	}
	keep := map[int]bool{}
	for _, r := range byIPC[:k] {
		keep[r.idx] = true
	}
	var (
		newGrid  []gridPoint
		newSpecs []api.RunSpec
		pred     = map[int]float64{}
	)
	for i := range specs {
		if !keep[i] {
			continue
		}
		pred[len(newGrid)] = ranks[i].ipc
		newGrid = append(newGrid, grid[i])
		newSpecs = append(newSpecs, specs[i])
	}
	return newGrid, newSpecs, pred, nil
}

// rankAgreement compares the model's pre-submission ranking with the
// simulated outcome over the points that actually ran: the fraction of
// point pairs both orderings agree on (Kendall-style concordance).
func rankAgreement(grid []gridPoint, points []api.PointResult, predicted map[int]float64) string {
	measured := map[int]float64{}
	for _, res := range points {
		if res.Index < 0 || res.Index >= len(grid) || res.Error != nil {
			continue
		}
		if ipc, ok := reportIPC(res.Report); ok {
			measured[res.Index] = ipc
		}
	}
	idxs := make([]int, 0, len(measured))
	for i := range measured {
		if _, ok := predicted[i]; ok {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	concordant, pairs := 0, 0
	for a := 0; a < len(idxs); a++ {
		for b := a + 1; b < len(idxs); b++ {
			i, j := idxs[a], idxs[b]
			dp, dm := predicted[i]-predicted[j], measured[i]-measured[j]
			if dp == 0 || dm == 0 {
				continue // ties carry no ordering information
			}
			pairs++
			if (dp > 0) == (dm > 0) {
				concordant++
			}
		}
	}
	if pairs == 0 {
		return "rank agreement: not enough completed points to compare"
	}
	return fmt.Sprintf("predicted-vs-simulated rank agreement: %d/%d concordant pairs (%.0f%%) over %d points",
		concordant, pairs, 100*float64(concordant)/float64(pairs), len(idxs))
}

// reportIPC extracts the IPC of one point report: the scalar report's
// "ipc" field, or for cluster reports the cluster block's aggregate
// IPC (the sum over cores — the throughput number a K-way cell should
// show).
func reportIPC(raw json.RawMessage) (float64, bool) {
	var rep struct {
		IPC     float64 `json:"ipc"`
		Cluster *struct {
			AggregateIPC float64 `json:"aggregateIPC"`
		} `json:"cluster"`
	}
	if json.Unmarshal(raw, &rep) != nil {
		return 0, false
	}
	if rep.Cluster != nil {
		return rep.Cluster.AggregateIPC, true
	}
	return rep.IPC, true
}

// renderTable aggregates per-point IPC into a row × latency markdown
// table (cells average over seeds) and returns it with the failed-point
// count. Rows are policies, qualified by cluster shape when the grid
// sweeps core counts; cluster cells show aggregate (summed) IPC.
func renderTable(grid []gridPoint, points []api.PointResult, scalarOnly bool, lats []int, seedCount int) (string, int) {
	type cell struct {
		sum float64
		n   int
	}
	var rows []string
	cells := map[string]map[int]*cell{}
	for _, g := range grid {
		r := g.row(scalarOnly)
		if cells[r] == nil {
			rows = append(rows, r)
			cells[r] = map[int]*cell{}
			for _, l := range lats {
				cells[r][l] = &cell{}
			}
		}
	}
	failed := 0
	for _, res := range points {
		if res.Index < 0 || res.Index >= len(grid) {
			continue
		}
		if res.Error != nil {
			failed++
			continue
		}
		ipc, ok := reportIPC(res.Report)
		if !ok {
			failed++
			continue
		}
		g := grid[res.Index]
		c := cells[g.row(scalarOnly)][g.latency]
		c.sum += ipc
		c.n++
	}

	var b strings.Builder
	fmt.Fprintf(&b, "| policy | %s |\n", joinHeader(lats))
	fmt.Fprintf(&b, "|---|%s\n", strings.Repeat("---|", len(lats)))
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s |", r)
		for _, l := range lats {
			c := cells[r][l]
			if c.n == 0 {
				b.WriteString(" — |")
				continue
			}
			fmt.Fprintf(&b, " %.3f |", c.sum/float64(c.n))
		}
		b.WriteByte('\n')
	}
	if seedCount > 1 {
		fmt.Fprintf(&b, "\nIPC, mean of %d seeds per cell.\n", seedCount)
	}
	if !scalarOnly {
		b.WriteString("\nMulti-core cells report aggregate (summed) IPC.\n")
	}
	return b.String(), failed
}

func joinHeader(lats []int) string {
	parts := make([]string, len(lats))
	for i, l := range lats {
		parts[i] = fmt.Sprintf("IPC @ lat=%d", l)
	}
	return strings.Join(parts, " | ")
}

func dumpJSONL(path string, points []api.PointResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sorted := append([]api.PointResult(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	enc := json.NewEncoder(f)
	for _, p := range sorted {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return nil
}

func writeOut(path, table string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err := io.WriteString(w, table)
	return err
}

func splitNames(csv string) ([]string, error) {
	var out []string
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s != "" {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty name list %q", csv)
	}
	return out, nil
}

func splitInts(csv string) ([]int, error) {
	names, err := splitNames(csv)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(names))
	for i, s := range names {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
