// Command rssbench orchestrates a policy × reconfiguration-latency ×
// seed sweep over an rssd cluster and renders the result as an
// EXPERIMENTS-ready markdown IPC table. It is the jobs-API showcase:
// the grid goes up as one durable job (POST /v1/jobs), progress is
// followed live over the events stream, and per-point failures land in
// the table as holes instead of aborting the run.
//
// Usage:
//
//	rssbench -addr http://127.0.0.1:8080
//	rssbench -policies steering,demand,oracle -latencies 4,8,16 -seeds 7,8
//	rssbench -program prog.s -max-cycles 2000000 -o table.md
//
// Without -program it synthesizes the paper's phase-alternating
// workload (deterministic for a given -synth-seed), so a bare rssbench
// against a fresh rssd produces a meaningful table.
//
// The grid is ordered seed-innermost on purpose: points of one
// policy × latency cell differ only by seed, which is exactly the
// lane-compatibility rule of rssd's wide machine, so the server batches
// each cell's seed replicas onto the lanes of one simulator pass (see
// rssd's -batch-lanes). Results are unaffected — lane runs are
// bit-identical to scalar runs — only throughput changes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/api"
	"repro/internal/client"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "rssd base URL")
		program   = flag.String("program", "", "assembly source file (empty: synthesize a phased workload)")
		synthLen  = flag.Int("synth-len", 4000, "synthetic workload length in instructions")
		synthPer  = flag.Int("synth-period", 500, "synthetic workload phase period")
		synthSeed = flag.Int64("synth-seed", 7, "synthetic workload generator seed")
		policies  = flag.String("policies", "steering,demand,prefetch,full-reconfig,ffu-only", "comma-separated policy names")
		latencies = flag.String("latencies", "4,8,16", "comma-separated reconfiguration latencies (cycles)")
		seeds     = flag.String("seeds", "7", "comma-separated simulation seeds (averaged per cell)")
		maxCycles = flag.Int("max-cycles", 0, "cycle budget per point (0: server default)")
		pointTO   = flag.Duration("point-timeout", 30*time.Second, "per-point simulation deadline")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall deadline for the sweep")
		label     = flag.String("label", "rssbench", "job label")
		outPath   = flag.String("o", "-", "markdown output path ('-' for stdout)")
		jsonlPath = flag.String("jsonl", "", "also dump raw per-point results as JSONL here")
		quiet     = flag.Bool("q", false, "suppress per-point progress on stderr")
	)
	flag.Parse()
	if err := run(*addr, *program, *synthLen, *synthPer, *synthSeed, *policies, *latencies,
		*seeds, *maxCycles, *pointTO, *timeout, *label, *outPath, *jsonlPath, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "rssbench:", err)
		os.Exit(1)
	}
}

// gridPoint remembers which cell of the table a job point belongs to.
type gridPoint struct {
	policy  string
	latency int
	seed    int64
}

func run(addr, program string, synthLen, synthPer int, synthSeed int64,
	policyCSV, latencyCSV, seedCSV string, maxCycles int,
	pointTO, timeout time.Duration, label, outPath, jsonlPath string, quiet bool) error {

	policyNames, err := splitNames(policyCSV)
	if err != nil {
		return err
	}
	lats, err := splitInts(latencyCSV)
	if err != nil {
		return fmt.Errorf("parsing -latencies: %w", err)
	}
	seeds, err := splitInts(seedCSV)
	if err != nil {
		return fmt.Errorf("parsing -seeds: %w", err)
	}

	// Resolve the program: a source file, or the synthesized
	// phase-alternating workload encoded to binary words.
	req := api.JobRequest{Label: label, PointTimeoutMs: int(pointTO / time.Millisecond)}
	switch {
	case program != "":
		src, err := os.ReadFile(program)
		if err != nil {
			return err
		}
		req.Source = string(src)
	default:
		prog := repro.Synthesize(repro.AlternatingPhases(synthLen, synthPer), synthSeed)
		words, err := repro.EncodeProgram(prog)
		if err != nil {
			return fmt.Errorf("encoding synthetic workload: %w", err)
		}
		req.Words = words
	}

	// Build the grid in deterministic order: policy-major, then latency,
	// then seed — the point index maps back through the same order, and
	// seed-innermost keeps each cell's replicas adjacent so the server
	// can batch them onto one wide machine.
	var grid []gridPoint
	for _, pname := range policyNames {
		p, err := repro.ParsePolicy(pname)
		if err != nil {
			return err
		}
		for _, lat := range lats {
			for _, seed := range seeds {
				grid = append(grid, gridPoint{policy: pname, latency: lat, seed: int64(seed)})
				req.Points = append(req.Points, api.RunSpec{
					Policy:    p,
					Params:    repro.Params{ReconfigLatency: lat},
					MaxCycles: maxCycles,
					Seed:      int64(seed),
				})
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c := client.New(addr)
	created, err := c.SubmitJob(ctx, req)
	if err != nil {
		return fmt.Errorf("submitting job: %w", err)
	}
	fmt.Fprintf(os.Stderr, "rssbench: job %s submitted (%d points)\n", created.ID, created.Total)

	done := 0
	status, err := c.WaitJob(ctx, created.ID, func(ev api.JobEvent) {
		if ev.Type != api.EventPoint || ev.Point == nil {
			return
		}
		done++
		if quiet {
			return
		}
		g := grid[ev.Point.Index]
		outcome := "ok"
		if ev.Point.Error != nil {
			outcome = ev.Point.Error.Code
		}
		fmt.Fprintf(os.Stderr, "rssbench: [%d/%d] %s lat=%d seed=%d on %s: %s\n",
			done, created.Total, g.policy, g.latency, g.seed, ev.Point.Worker, outcome)
	})
	if err != nil {
		return fmt.Errorf("waiting for job %s: %w", created.ID, err)
	}
	if status.State != api.JobDone {
		return fmt.Errorf("job %s ended %s with %d/%d points", created.ID, status.State, status.Done, status.Total)
	}

	if jsonlPath != "" {
		if err := dumpJSONL(jsonlPath, status.Points); err != nil {
			return err
		}
	}
	table, failed := renderTable(grid, status.Points, policyNames, lats, len(seeds))
	if err := writeOut(outPath, table); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d points failed (holes in the table)", failed, len(grid))
	}
	return nil
}

// renderTable aggregates per-point IPC into a policy × latency markdown
// table (cells average over seeds) and returns it with the failed-point
// count.
func renderTable(grid []gridPoint, points []api.PointResult, policyNames []string, lats []int, seedCount int) (string, int) {
	type cell struct {
		sum float64
		n   int
	}
	cells := map[string]map[int]*cell{}
	for _, p := range policyNames {
		cells[p] = map[int]*cell{}
		for _, l := range lats {
			cells[p][l] = &cell{}
		}
	}
	failed := 0
	for _, res := range points {
		if res.Index < 0 || res.Index >= len(grid) {
			continue
		}
		if res.Error != nil {
			failed++
			continue
		}
		var rep struct {
			IPC float64 `json:"ipc"`
		}
		if json.Unmarshal(res.Report, &rep) != nil {
			failed++
			continue
		}
		g := grid[res.Index]
		c := cells[g.policy][g.latency]
		c.sum += rep.IPC
		c.n++
	}

	var b strings.Builder
	fmt.Fprintf(&b, "| policy | %s |\n", joinHeader(lats))
	fmt.Fprintf(&b, "|---|%s\n", strings.Repeat("---|", len(lats)))
	for _, p := range policyNames {
		fmt.Fprintf(&b, "| %s |", p)
		for _, l := range lats {
			c := cells[p][l]
			if c.n == 0 {
				b.WriteString(" — |")
				continue
			}
			fmt.Fprintf(&b, " %.3f |", c.sum/float64(c.n))
		}
		b.WriteByte('\n')
	}
	if seedCount > 1 {
		fmt.Fprintf(&b, "\nIPC, mean of %d seeds per cell.\n", seedCount)
	}
	return b.String(), failed
}

func joinHeader(lats []int) string {
	parts := make([]string, len(lats))
	for i, l := range lats {
		parts[i] = fmt.Sprintf("IPC @ lat=%d", l)
	}
	return strings.Join(parts, " | ")
}

func dumpJSONL(path string, points []api.PointResult) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sorted := append([]api.PointResult(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	enc := json.NewEncoder(f)
	for _, p := range sorted {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return nil
}

func writeOut(path, table string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err := io.WriteString(w, table)
	return err
}

func splitNames(csv string) ([]string, error) {
	var out []string
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s != "" {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty name list %q", csv)
	}
	return out, nil
}

func splitInts(csv string) ([]int, error) {
	names, err := splitNames(csv)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(names))
	for i, s := range names {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
