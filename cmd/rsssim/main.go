// Command rsssim runs the reconfigurable superscalar simulator on a
// program — an assembly file, a built-in kernel, or a synthetic workload
// — under a chosen configuration policy and prints the run report.
//
// Usage:
//
//	rsssim -kernel saxpy
//	rsssim -kernel matmul -policy static-integer
//	rsssim -asm prog.s -policy full-reconfig -reconfig-latency 32
//	rsssim -synthetic phased -policy steering -trace
//	rsssim -kernel saxpy -metrics run.jsonl                 # telemetry time series
//	rsssim -kernel matmul -metrics - -metrics-format csv    # to stdout
//	rsssim -synthetic alternating -prefetch -trace-spans trace.json  # Perfetto timeline
//	rsssim -kernel saxpy -fault-rate 0.01 -flight-dump dump.json     # dump ring at anomaly
//	rsssim -kernel matmul -lanes 16        # 16 seeded replicas on the wide machine
//	rsssim -kernels            # list built-in kernels
package main

import (
	"flag"
	"fmt"
	"io"
	"math/bits"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/span"
	"repro/internal/wide"
)

func main() {
	var (
		asmPath    = flag.String("asm", "", "assembly source file to run")
		kernelName = flag.String("kernel", "", "built-in kernel to run")
		synthetic  = flag.String("synthetic", "", "synthetic workload: int, fp, mem, mdu, uniform, phased, alternating")
		policyName = flag.String("policy", repro.PolicySteering.String(), "configuration policy")
		listK      = flag.Bool("kernels", false, "list built-in kernels and exit")
		listP      = flag.Bool("list-policies", false, "list configuration policies and exit")
		maxCycles  = flag.Int("max-cycles", 50_000_000, "cycle budget")
		seed       = flag.Int64("seed", 7, "seed for synthetic workloads / random policy")
		window     = flag.Int("window", 0, "scheduling window size; 0 means use the default (7), negative is an error")
		reconfig   = flag.Int("reconfig-latency", 0, "cycles per RFU span reconfiguration; 0 means use the default (8), negative is an error (near-instant reconfiguration is 1)")
		disableFFU = flag.Bool("no-ffus", false, "disable the fixed functional units (X4 ablation)")
		traceN     = flag.Int("trace", 0, "print a pipeline trace and chart of the first N cycles")
		basisPath  = flag.String("basis", "", "JSON file with a custom 3-configuration steering basis")
		lookahead  = flag.Bool("lookahead", false, "feed the manager fetched-but-undispatched demand too (X10)")
		residency  = flag.Int("residency", 0, "minimum cycles between configuration loads (X11)")
		jsonOut    = flag.Bool("json", false, "emit the run report as JSON instead of text")
		lanes      = flag.Int("lanes", 1, "run N seeded replicas (seeds seed..seed+N-1) as lanes of the wide machine and print per-lane IPC plus aggregate throughput")

		cores       = flag.Int("cores", 1, "run K cores as a reconfigurable cluster sharing one fabric and print per-core plus aggregate IPC")
		clusterMode = flag.String("cluster-mode", "", "cluster fabric-sharing mode: merged (default) or split")
		clusterArb  = flag.String("cluster-arbiter", "", "cluster arbitration policy: round-robin (default) or demand-weighted")
		clusterFlip = flag.Int("cluster-switch-every", 0, "toggle merged/split every N cluster cycles at the next quiescent phase boundary (0 never switches)")

		estimate     = flag.Bool("estimate", false, "also solve the analytic queueing model and print its prediction next to the measured IPC")
		estimateOnly = flag.Bool("estimate-only", false, "print the analytic prediction and skip simulation entirely")

		faultRate     = flag.Float64("fault-rate", 0, "per-slot per-cycle probability of a transient configuration upset (0 disables fault injection)")
		faultPermRate = flag.Float64("fault-permanent-rate", 0, "per-slot per-cycle probability of a permanent configuration fault")
		faultSeed     = flag.Int64("fault-seed", 1, "seed for the fault injector's PRNG stream")
		faultScrub    = flag.Int("fault-scrub-interval", 0, "cycles between readback scrub scans; 0 means the default (64)")

		prefetchOn   = flag.Bool("prefetch", false, "shorthand for -policy prefetch (phase-aware speculative reconfiguration)")
		prefetchHist = flag.Int("prefetch-history", 0, "demand-history ring depth of the prefetch predictor; 0 means the default (32)")
		prefetchConf = flag.Float64("prefetch-confidence", 0, "Markov confidence threshold in (0,1] for speculative loads; 0 means the default (0.55)")

		metricsPath     = flag.String("metrics", "", "write telemetry to this file (\"-\" for stdout)")
		metricsInterval = flag.Int("metrics-interval", repro.DefaultMetricsInterval, "cycles between telemetry samples")
		metricsFormat   = flag.String("metrics-format", "jsonl", "telemetry format: jsonl, csv, prom")
		pprofAddr       = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for profiling the simulator")

		spansPath   = flag.String("trace-spans", "", "write a span trace of the run to this file (\"-\" for stdout)")
		spansFormat = flag.String("trace-spans-format", "chrome", "span trace format: chrome (Perfetto-loadable Chrome Trace JSON) or jsonl")
		flightPath  = flag.String("flight-dump", "", "arm the flight recorder: dump the last-N span ring to this file when an anomaly trigger fires (fault storm, IPC collapse)")
	)
	flag.Parse()

	if *window < 0 {
		fail(fmt.Errorf("-window must be non-negative (0 selects the default of 7), got %d", *window))
	}
	if *reconfig < 0 {
		fail(fmt.Errorf("-reconfig-latency must be non-negative (0 selects the default of 8; use 1 for near-instant reconfiguration), got %d", *reconfig))
	}
	if *metricsInterval <= 0 {
		fail(fmt.Errorf("-metrics-interval must be positive, got %d", *metricsInterval))
	}
	if *faultRate < 0 || *faultRate > 1 {
		fail(fmt.Errorf("-fault-rate must be a probability in [0,1], got %g", *faultRate))
	}
	if *faultPermRate < 0 || *faultPermRate > 1 {
		fail(fmt.Errorf("-fault-permanent-rate must be a probability in [0,1], got %g", *faultPermRate))
	}
	if *faultRate+*faultPermRate > 1 {
		fail(fmt.Errorf("-fault-rate + -fault-permanent-rate must not exceed 1, got %g", *faultRate+*faultPermRate))
	}
	if *faultScrub < 0 {
		fail(fmt.Errorf("-fault-scrub-interval must be non-negative (0 selects the default of 64), got %d", *faultScrub))
	}
	if *prefetchHist < 0 {
		fail(fmt.Errorf("-prefetch-history must be non-negative (0 selects the default of 32), got %d", *prefetchHist))
	}
	if *prefetchConf < 0 || *prefetchConf > 1 {
		fail(fmt.Errorf("-prefetch-confidence must be in [0,1] (0 selects the default of 0.55), got %g", *prefetchConf))
	}
	if *spansFormat != "chrome" && *spansFormat != "jsonl" {
		fail(fmt.Errorf("-trace-spans-format must be chrome or jsonl, got %q", *spansFormat))
	}
	if *lanes < 1 || *lanes > wide.MaxLanes {
		fail(fmt.Errorf("-lanes must be in [1,%d], got %d", wide.MaxLanes, *lanes))
	}
	if *cores < 1 || *cores > cluster.MaxCores {
		fail(fmt.Errorf("-cores must be in [1,%d], got %d", cluster.MaxCores, *cores))
	}
	if _, err := cluster.ParseMode(*clusterMode); err != nil {
		fail(err)
	}
	if _, err := cluster.ParseArbiter(*clusterArb); err != nil {
		fail(err)
	}
	if *clusterFlip < 0 {
		fail(fmt.Errorf("-cluster-switch-every must be non-negative, got %d", *clusterFlip))
	}
	if *cores > 1 {
		for _, conflict := range []struct {
			set  bool
			name string
		}{
			{*lanes > 1, "-lanes"},
			{*traceN > 0, "-trace"},
			{*flightPath != "", "-flight-dump"},
			{*jsonOut, "-json"},
			{*estimate || *estimateOnly, "-estimate"},
			{*metricsPath != "" && *metricsFormat == "prom", "-metrics-format prom (one registry snapshot cannot merge K cores)"},
		} {
			if conflict.set {
				fail(fmt.Errorf("%s conflicts with -cores", conflict.name))
			}
		}
	}
	if *lanes > 1 {
		// Per-machine instrumentation attaches to one lane's machine;
		// with several lanes the outputs would interleave meaninglessly.
		for _, conflict := range []struct {
			set  bool
			name string
		}{
			{*traceN > 0, "-trace"},
			{*metricsPath != "", "-metrics"},
			{*spansPath != "", "-trace-spans"},
			{*flightPath != "", "-flight-dump"},
			{*jsonOut, "-json"},
			{*estimate || *estimateOnly, "-estimate"},
		} {
			if conflict.set {
				fail(fmt.Errorf("%s is per-run instrumentation and conflicts with -lanes", conflict.name))
			}
		}
	}
	if *prefetchOn {
		policySet := false
		flag.Visit(func(f *flag.Flag) { policySet = policySet || f.Name == "policy" })
		if policySet && *policyName != repro.PolicyPrefetch.String() {
			fail(fmt.Errorf("-prefetch conflicts with -policy %s", *policyName))
		}
		*policyName = repro.PolicyPrefetch.String()
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rsssim: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *listK {
		for _, k := range repro.Kernels() {
			fmt.Printf("%-10s %s\n", k.Name, k.Description)
		}
		return
	}
	if *listP {
		// The canonical cpu.Policy name table, in declaration order —
		// the same table ParsePolicy and the rssd error envelopes use.
		for _, p := range repro.Policies() {
			fmt.Println(p)
		}
		return
	}

	policy, err := repro.ParsePolicy(*policyName)
	if err != nil {
		fail(err)
	}
	params := repro.DefaultParams()
	params.WindowSize = *window
	params.ReconfigLatency = *reconfig
	params.DisableFFUs = *disableFFU
	params.ManagerLookahead = *lookahead
	params.FaultTransientRate = *faultRate
	params.FaultPermanentRate = *faultPermRate
	params.FaultSeed = *faultSeed
	params.FaultScrubInterval = *faultScrub
	params.PrefetchHistoryDepth = *prefetchHist
	params.PrefetchConfidence = *prefetchConf
	opt := repro.Options{Params: params, Policy: policy, Seed: *seed, MinResidency: *residency}
	if *basisPath != "" {
		data, err := os.ReadFile(*basisPath)
		if err != nil {
			fail(err)
		}
		basis, err := repro.ParseBasis(data)
		if err != nil {
			fail(fmt.Errorf("parsing %s: %w", *basisPath, err))
		}
		opt.Basis = &basis
	}

	// build constructs one fully set-up machine for a lane seed, plus an
	// optional output validator. The scalar path calls it once with the
	// base seed; -lanes N calls it per lane with seed..seed+N-1.
	var build func(laneSeed int64) (*repro.Machine, func(*repro.Machine) error)
	// program yields the bare instruction stream for the analytic model —
	// the same stream build feeds the simulator.
	var program func(laneSeed int64) repro.Program
	// coreSetup / coreValidate instrument one cluster core's machine; only
	// kernels need them (register/memory presets and output checks).
	var coreSetup func(*repro.Machine)
	var coreValidate func(*repro.Machine) error
	switch {
	case *kernelName != "":
		k := repro.KernelByName(*kernelName)
		if k == nil {
			fail(fmt.Errorf("unknown kernel %q; try -kernels", *kernelName))
		}
		if k.Setup != nil {
			coreSetup = func(m *repro.Machine) {
				k.Setup(m.Processor().Memory(), m.Processor().SetReg)
			}
		}
		if k.Validate != nil {
			coreValidate = func(m *repro.Machine) error {
				return k.Validate(m.Processor().Reg, m.Processor().Memory())
			}
		}
		program = func(int64) repro.Program { return k.Program() }
		build = func(laneSeed int64) (*repro.Machine, func(*repro.Machine) error) {
			o := opt
			o.Seed = laneSeed
			m := repro.NewMachine(k.Program(), o)
			if k.Setup != nil {
				k.Setup(m.Processor().Memory(), m.Processor().SetReg)
			}
			if k.Validate == nil {
				return m, nil
			}
			return m, func(m *repro.Machine) error {
				return k.Validate(m.Processor().Reg, m.Processor().Memory())
			}
		}

	case *asmPath != "":
		src, err := os.ReadFile(*asmPath)
		if err != nil {
			fail(err)
		}
		unit, err := repro.AssembleUnit(string(src))
		if err != nil {
			fail(err)
		}
		program = func(int64) repro.Program { return unit.Program }
		build = func(laneSeed int64) (*repro.Machine, func(*repro.Machine) error) {
			o := opt
			o.Seed = laneSeed
			return repro.NewMachineFromUnit(unit, o), nil
		}

	case *synthetic != "":
		program = func(laneSeed int64) repro.Program {
			prog, err := syntheticProgram(*synthetic, laneSeed)
			if err != nil {
				fail(err)
			}
			return prog
		}
		build = func(laneSeed int64) (*repro.Machine, func(*repro.Machine) error) {
			// The workload itself is seeded too: each lane simulates a
			// distinct draw of the same synthetic mix.
			prog, err := syntheticProgram(*synthetic, laneSeed)
			if err != nil {
				fail(err)
			}
			o := opt
			o.Seed = laneSeed
			return repro.NewMachine(prog, o), nil
		}

	default:
		fmt.Fprintln(os.Stderr, "one of -kernel, -asm or -synthetic is required")
		flag.Usage()
		os.Exit(2)
	}

	var est *repro.Estimate
	if *estimate || *estimateOnly {
		e, err := repro.EstimateIPC(program(*seed), opt)
		if err != nil {
			fail(err)
		}
		est = &e
		printEstimate(e, policy)
		if *estimateOnly {
			return
		}
	}

	if *cores > 1 {
		opt.Params.Cores = *cores
		opt.Params.ClusterMode = *clusterMode
		opt.Params.ClusterArbiter = *clusterArb
		runCluster(clusterRunConfig{
			opt: opt, program: program, setup: coreSetup, validate: coreValidate,
			cores: *cores, seed: *seed, maxCycles: *maxCycles, switchEvery: *clusterFlip,
			metricsPath: *metricsPath, metricsFormat: *metricsFormat, metricsInterval: *metricsInterval,
			spansPath: *spansPath, spansFormat: *spansFormat,
		})
		return
	}

	if *lanes > 1 {
		runWide(build, *lanes, *seed, *maxCycles)
		return
	}

	m, v := build(*seed)
	var validate func() error
	if v != nil {
		validate = func() error { return v(m) }
	}

	if *traceN > 0 {
		m.EnableTracingUntil(64**traceN, *traceN)
	}
	var metricsFile *os.File
	if *metricsPath != "" {
		var w io.Writer
		if *metricsPath == "-" {
			w = os.Stdout
		} else {
			f, err := os.Create(*metricsPath)
			if err != nil {
				fail(err)
			}
			metricsFile = f
			w = f
		}
		if _, err := m.EnableTelemetry(w, *metricsFormat, *metricsInterval); err != nil {
			fail(err)
		}
	}
	if *spansPath != "" || *flightPath != "" {
		var cfg repro.SpanConfig
		if *flightPath != "" {
			// Dump the flight ring once, at the first anomaly, so the
			// file captures the spans surrounding the trigger rather
			// than whatever the ring holds at exit.
			dumped := false
			path := *flightPath
			cfg.OnTrigger = func(r *span.Recorder, reason string) {
				if dumped {
					return
				}
				dumped = true
				f, err := os.Create(path)
				if err == nil {
					err = r.DumpFlight(f, reason)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "rsssim: flight dump:", err)
					return
				}
				fmt.Fprintf(os.Stderr, "flight recorder: %s trigger, ring dumped to %s\n", reason, path)
			}
		}
		m.EnableSpans(cfg)
	}
	_, runErr := m.Run(*maxCycles)
	if rec := m.Spans(); rec != nil {
		if *spansPath != "" {
			writeSpans(rec, *spansPath, *spansFormat)
		}
		if *flightPath != "" && rec.Triggers() == 0 {
			fmt.Fprintln(os.Stderr, "flight recorder: no anomaly triggers fired; no dump written")
		}
	}
	if runErr != nil {
		fail(runErr)
	}
	if metricsFile != nil {
		// Run flushed the exporter; surface close errors so a full disk
		// is not silent.
		if err := metricsFile.Close(); err != nil {
			fail(err)
		}
	}
	if validate != nil {
		if err := validate(); err != nil {
			fail(fmt.Errorf("validation: %w", err))
		}
		fmt.Println("kernel output validated OK")
	}
	if *traceN > 0 {
		fmt.Printf("pipeline chart, cycles 0..%d (F fetch, D dispatch, I issue, = executing, R retire, x flushed):\n", *traceN)
		fmt.Println(m.Pipeview(0, *traceN))
	}
	if est != nil {
		// The line the flag exists for: model next to measurement. On
		// -json it goes to stderr so the report stays machine-parseable.
		out := io.Writer(os.Stdout)
		if *jsonOut {
			out = os.Stderr
		}
		measured := m.Stats().IPC()
		errPct := 0.0
		if measured > 0 {
			errPct = 100 * (est.PredictedIPC - measured) / measured
		}
		fmt.Fprintf(out, "analytic model: predicted IPC %.3f vs measured %.3f (%+.1f%%)\n",
			est.PredictedIPC, measured, errPct)
	}
	if *jsonOut {
		data, err := m.ReportJSON()
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Print(m.Report())
}

// printEstimate renders one analytic prediction in the same spirit as
// the run report: headline IPC, the per-class station solutions, and
// the validity envelope the number is only good inside.
func printEstimate(e repro.Estimate, policy repro.Policy) {
	fmt.Printf("analytic estimate (policy %s, model v%d):\n", policy, e.ModelVersion)
	fmt.Printf("  predicted IPC      %8.3f\n", e.PredictedIPC)
	fmt.Printf("  predicted cycles   %8.0f\n", e.PredictedCycles)
	fmt.Printf("  instructions       %8d in %d segments (ILP %.2f)\n", e.Instructions, e.Segments, e.ILP)
	fmt.Printf("  reconfig overhead  %8.0f cycles\n", e.ReconfigOverhead)
	fmt.Printf("  bottleneck         %s\n", e.Bottleneck)
	for _, c := range e.Classes {
		fmt.Printf("  %-7s capacity %5.2f  utilization %5.1f%%  queue delay %6.2f cyc\n",
			c.Unit, c.Capacity, 100*c.Utilization, c.QueueDelay)
	}
	fmt.Printf("  envelope: %s\n", e.Envelope)
}

// runWide runs n seeded replicas (seeds seed..seed+n-1) as lanes of one
// wide machine and prints a per-lane result table plus the aggregate
// throughput: total simulated cycles across all lanes over the wall
// time of the single batched pass.
func runWide(build func(int64) (*repro.Machine, func(*repro.Machine) error), n int, seed int64, maxCycles int) {
	lanes := make([]wide.Lane, n)
	validators := make([]func(*repro.Machine) error, n)
	for i := range lanes {
		m, v := build(seed + int64(i))
		lanes[i] = wide.Lane{M: m, MaxCycles: maxCycles}
		validators[i] = v
	}
	w := wide.New(lanes)
	start := time.Now()
	results := w.Run()
	elapsed := time.Since(start)

	failed := false
	totalCycles := 0
	fmt.Printf("%-5s %-7s %12s %12s %8s  %s\n", "lane", "seed", "cycles", "retired", "IPC", "status")
	for i, r := range results {
		totalCycles += r.Stats.Cycles
		status := "halt"
		switch {
		case r.Err != nil:
			status = r.Err.Error()
			failed = true
		case validators[i] != nil:
			if err := validators[i](w.Lane(i)); err != nil {
				status = fmt.Sprintf("validation: %v", err)
				failed = true
			} else {
				status = "halt, validated OK"
			}
		}
		fmt.Printf("%-5d %-7d %12d %12d %8.3f  %s\n",
			i, seed+int64(i), r.Stats.Cycles, r.Stats.Retired, r.Stats.IPC(), status)
	}
	fmt.Printf("\nlanes: %d (halted %d, cycle-limited %d)\n",
		n, bits.OnesCount64(w.HaltedMask()), bits.OnesCount64(w.LimitedMask()))
	fmt.Printf("aggregate: %d cycles in %v = %.3g cycles/sec\n",
		totalCycles, elapsed.Round(time.Microsecond), float64(totalCycles)/elapsed.Seconds())
	if failed {
		os.Exit(1)
	}
}

// clusterRunConfig carries the -cores run's inputs to runCluster.
type clusterRunConfig struct {
	opt                        repro.Options
	program                    func(int64) repro.Program
	setup                      func(*repro.Machine)
	validate                   func(*repro.Machine) error
	cores                      int
	seed                       int64
	maxCycles                  int
	switchEvery                int
	metricsPath, metricsFormat string
	metricsInterval            int
	spansPath, spansFormat     string
}

// runCluster runs K cores against the shared reconfigurable fabric and
// prints a per-core result table plus the cluster aggregates: total
// IPC, Jain fairness, and the mode-switch history. Synthetic workloads
// draw per-core variants (seeds seed..seed+K-1); kernels and assembly
// run the same program on every core.
func runCluster(cfg clusterRunConfig) {
	progs := make([]repro.Program, cfg.cores)
	for i := range progs {
		progs[i] = cfg.program(cfg.seed + int64(i))
	}
	c := cluster.NewMulti(progs, cfg.opt)
	if cfg.setup != nil {
		for k := 0; k < cfg.cores; k++ {
			cfg.setup(c.Core(k))
		}
	}
	if cfg.switchEvery > 0 {
		c.SetSwitchEvery(cfg.switchEvery)
	}
	var metricsFile *os.File
	if cfg.metricsPath != "" {
		w := io.Writer(os.Stdout)
		if cfg.metricsPath != "-" {
			f, err := os.Create(cfg.metricsPath)
			if err != nil {
				fail(err)
			}
			metricsFile = f
			w = f
		}
		if err := c.EnableTelemetry(w, cfg.metricsFormat, cfg.metricsInterval); err != nil {
			fail(err)
		}
	}
	var recs []*span.Recorder
	if cfg.spansPath != "" {
		recs = c.EnableSpans(repro.SpanConfig{})
	}
	start := time.Now()
	stats, runErr := c.Run(cfg.maxCycles)
	elapsed := time.Since(start)
	if recs != nil {
		writeClusterSpans(c, recs, cfg.spansPath, cfg.spansFormat)
	}
	if runErr != nil {
		fail(runErr)
	}
	if metricsFile != nil {
		if err := metricsFile.Close(); err != nil {
			fail(err)
		}
	}

	failed := false
	fmt.Printf("%-5s %12s %12s %8s  %s\n", "core", "cycles", "retired", "IPC", "status")
	for k, cs := range stats.Cores {
		status := "halt"
		if cfg.validate != nil {
			if err := cfg.validate(c.Core(k)); err != nil {
				status = fmt.Sprintf("validation: %v", err)
				failed = true
			} else {
				status = "halt, validated OK"
			}
		}
		fmt.Printf("%-5d %12d %12d %8.3f  %s\n", k, cs.Cycles, cs.Retired, cs.IPC(), status)
	}
	fmt.Printf("\ncluster: %d cores, mode %s, arbiter %s, %d mode switches\n",
		cfg.cores, stats.Mode, stats.Arbiter, stats.ModeSwitches)
	fmt.Printf("aggregate IPC: %.3f   fairness (Jain): %.3f\n", stats.AggregateIPC(), stats.Fairness())
	totalCycles := 0
	for _, cs := range stats.Cores {
		totalCycles += cs.Cycles
	}
	fmt.Printf("throughput: %d core-cycles in %v = %.3g cycles/sec\n",
		totalCycles, elapsed.Round(time.Microsecond), float64(totalCycles)/elapsed.Seconds())
	if failed {
		os.Exit(1)
	}
}

// writeClusterSpans exports the cluster's combined span trace: the
// chrome format renders each core under its own process lane; jsonl
// concatenates the per-core streams (rows carry core labels).
func writeClusterSpans(c *cluster.Machine, recs []*span.Recorder, path, format string) {
	var w io.Writer = os.Stdout
	var f *os.File
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			fail(err)
		}
		w = f
	}
	var err error
	if format == "jsonl" {
		for _, rec := range recs {
			if err = rec.WriteJSONL(w); err != nil {
				break
			}
		}
	} else {
		err = c.WriteChromeTrace(w)
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fail(err)
	}
}

func syntheticProgram(kind string, seed int64) (repro.Program, error) {
	const n = 3000
	switch kind {
	case "int":
		return repro.Synthesize([]repro.Phase{{Mix: repro.MixIntHeavy, Instructions: n}}, seed), nil
	case "fp":
		return repro.Synthesize([]repro.Phase{{Mix: repro.MixFPHeavy, Instructions: n}}, seed), nil
	case "mem":
		return repro.Synthesize([]repro.Phase{{Mix: repro.MixMemHeavy, Instructions: n}}, seed), nil
	case "mdu":
		return repro.Synthesize([]repro.Phase{{Mix: repro.MixMDUHeavy, Instructions: n}}, seed), nil
	case "uniform":
		return repro.Synthesize([]repro.Phase{{Mix: repro.MixUniform, Instructions: n}}, seed), nil
	case "phased":
		return repro.Synthesize([]repro.Phase{
			{Mix: repro.MixIntHeavy, Instructions: n / 4},
			{Mix: repro.MixFPHeavy, Instructions: n / 4},
			{Mix: repro.MixMemHeavy, Instructions: n / 4},
			{Mix: repro.MixFPHeavy, Instructions: n / 4},
		}, seed), nil
	case "alternating":
		return repro.Synthesize(repro.AlternatingPhases(n, 250), seed), nil
	}
	return nil, fmt.Errorf("unknown synthetic workload %q", kind)
}

// writeSpans exports the recorded span trace to path ("-" for stdout)
// in the requested format.
func writeSpans(rec *span.Recorder, path, format string) {
	var w io.Writer = os.Stdout
	var f *os.File
	if path != "-" {
		var err error
		if f, err = os.Create(path); err != nil {
			fail(err)
		}
		w = f
	}
	var err error
	if format == "jsonl" {
		err = rec.WriteJSONL(w)
	} else {
		err = rec.WriteChromeTrace(w)
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fail(err)
	}
	if n := rec.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "span trace: %d entries dropped (trace buffer full; raise SpanConfig.MaxTrace)\n", n)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rsssim:", err)
	os.Exit(1)
}
