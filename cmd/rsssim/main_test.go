package main

import (
	"testing"

	"repro/internal/isa"
)

func TestSyntheticProgramKinds(t *testing.T) {
	for _, kind := range []string{"int", "fp", "mem", "mdu", "uniform", "phased"} {
		prog, err := syntheticProgram(kind, 3)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if len(prog) == 0 {
			t.Errorf("%s: empty program", kind)
			continue
		}
		if prog[len(prog)-1].Op != isa.HALT {
			t.Errorf("%s: program does not end in HALT", kind)
		}
	}
	if _, err := syntheticProgram("bogus", 1); err == nil {
		t.Error("unknown workload kind accepted")
	}
}

func TestSyntheticProgramSeeded(t *testing.T) {
	a, _ := syntheticProgram("uniform", 5)
	b, _ := syntheticProgram("uniform", 5)
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different programs")
		}
	}
}
