// Command paperrepro regenerates the paper's artefacts — Table 1 and
// Figures 1-7 as structural/behavioural reproductions — and the extension
// studies X1-X6 of DESIGN.md.
//
// Usage:
//
//	paperrepro                  # everything
//	paperrepro -artifact table1 # one artefact
//	paperrepro -list            # list artefact names
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
)

func main() {
	artifact := flag.String("artifact", "all", "artefact to regenerate (see -list)")
	list := flag.Bool("list", false, "list artefact names and exit")
	flag.Parse()

	arts := experiments.Artifacts()
	if *list {
		names := make([]string, 0, len(arts))
		for name := range arts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Println(name)
		}
		return
	}
	f, ok := arts[*artifact]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown artifact %q; try -list\n", *artifact)
		os.Exit(2)
	}
	fmt.Println(f())
}
