// Command asm assembles and disassembles programs for the simulator's
// RISC ISA.
//
// Usage:
//
//	asm prog.s                # assemble, print binary words as hex
//	asm -d prog.s             # assemble then disassemble (round trip)
//	asm -hex prog.hex         # disassemble a hex word listing
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/isa"
)

func main() {
	disasm := flag.Bool("d", false, "print disassembly instead of hex words")
	hexIn := flag.Bool("hex", false, "input is a hex word listing, not assembly")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asm [-d] [-hex] <file>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	var prog isa.Program
	if *hexIn {
		prog, err = decodeHex(string(data))
	} else {
		prog, err = isa.Assemble(string(data))
	}
	if err != nil {
		fail(err)
	}

	if *disasm || *hexIn {
		fmt.Print(isa.Disassemble(prog))
		return
	}
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		fail(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, word := range words {
		fmt.Fprintf(w, "%08x\n", word)
	}
}

func decodeHex(src string) (isa.Program, error) {
	var words []uint32
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
		}
		words = append(words, uint32(v))
	}
	return isa.DecodeProgram(words)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asm:", err)
	os.Exit(1)
}
