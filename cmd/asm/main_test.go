package main

import (
	"fmt"
	"testing"

	"repro/internal/isa"
)

func TestDecodeHexRoundTrip(t *testing.T) {
	prog := isa.MustAssemble(`
		add r1, r2, r3
		lw r4, 8(r5)
		halt
	`)
	words, err := isa.EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	src := "# comment line\n"
	for _, w := range words {
		src += fmt.Sprintf("%08x\n", w)
	}
	src += "\n" // blank lines tolerated
	back, err := decodeHex(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prog) {
		t.Fatalf("length %d, want %d", len(back), len(prog))
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Errorf("inst %d: %v, want %v", i, back[i], prog[i])
		}
	}
}

func TestDecodeHexErrors(t *testing.T) {
	if _, err := decodeHex("nothex\n"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := decodeHex("ff000000\n"); err == nil {
		t.Error("invalid opcode byte accepted")
	}
}
