// rssd serves the simulator as a batch HTTP/JSON service: assemble
// programs, run single simulations, and fan parameter sweeps out over a
// bounded worker pool. See internal/server for the API and the README's
// "Server mode" section for a curl quick start.
//
// Usage:
//
//	rssd [-addr :8080] [-workers N] [-backlog N] [-timeout 10s] ...
//
// The process shuts down gracefully on SIGINT/SIGTERM: new jobs are
// rejected with 503 while in-flight requests drain, bounded by
// -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		backlog      = flag.Int("backlog", 0, "max jobs waiting beyond running ones (0 = 4x workers)")
		maxBody      = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		timeout      = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "cap on request-supplied deadlines")
		maxCycles    = flag.Int("max-cycles", 50_000_000, "default cycle budget per simulation")
		cyclesCap    = flag.Int("cycles-cap", 500_000_000, "hard cap on request cycle budgets")
		cacheSize    = flag.Int("cache", 64, "assembled-program LRU capacity (negative disables)")
		sweepPoints  = flag.Int("sweep-points", 256, "max grid points per sweep request")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests at shutdown")
		enablePprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		spansPath    = flag.String("trace-spans", "", "write request spans as Chrome Trace JSON here after drain ('-' for stdout)")
		flightSize   = flag.Int("span-flight-size", 0, "service span flight-recorder ring size (0 = default)")
	)
	flag.Parse()

	api := server.New(server.Config{
		Workers:          *workers,
		Backlog:          *backlog,
		MaxBodyBytes:     *maxBody,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DefaultMaxCycles: *maxCycles,
		MaxCyclesCap:     *cyclesCap,
		CacheSize:        *cacheSize,
		MaxSweepPoints:   *sweepPoints,
		EnablePprof:      *enablePprof,
		SpanFlightSize:   *flightSize,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rssd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("rssd: serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("rssd: draining (up to %s)", *drainTimeout)
	api.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("rssd: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("rssd: serve: %v", err)
	}
	// Flush the span sink only after Shutdown returns: at that point the
	// drain is complete and no handler is still appending spans.
	if *spansPath != "" {
		if err := dumpSpans(api, *spansPath); err != nil {
			log.Fatalf("rssd: trace-spans: %v", err)
		}
	}
	log.Printf("rssd: drained, bye")
}

// dumpSpans writes the service flight recorder as a Chrome Trace so the
// request timeline of a finished rssd session loads in Perfetto.
func dumpSpans(api *server.Server, path string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return api.Spans().WriteChromeTrace(w)
}
