// rssd serves the simulator as a batch HTTP/JSON service: assemble
// programs, run single simulations, fan synchronous sweeps out over a
// bounded worker pool, and run durable asynchronous sweep jobs sharded
// across a worker fleet. See internal/server for the API and the
// README's "Server mode" and "Jobs API" sections for curl quick starts.
//
// Usage:
//
//	rssd [-addr :8080] [-workers N] [-job-dir DIR] [-worker-url URL]... ...
//
// With -job-dir, jobs survive restarts: on boot the store is replayed
// and incomplete jobs resume from their last completed point. With one
// or more -worker-url flags (or -spawn-workers N for a local fleet),
// job points are sharded across remote rssd workers instead of running
// in-process.
//
// The process shuts down gracefully on SIGINT/SIGTERM: new jobs are
// rejected with 503 while in-flight requests drain, bounded by
// -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// urlList collects repeated -worker-url flags.
type urlList []string

func (u *urlList) String() string     { return strings.Join(*u, ",") }
func (u *urlList) Set(v string) error { *u = append(*u, v); return nil }

func main() {
	var workerURLs urlList
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		backlog      = flag.Int("backlog", 0, "max jobs waiting beyond running ones (0 = 4x workers)")
		maxBody      = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		timeout      = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 2*time.Minute, "cap on request-supplied deadlines")
		maxCycles    = flag.Int("max-cycles", 50_000_000, "default cycle budget per simulation")
		cyclesCap    = flag.Int("cycles-cap", 500_000_000, "hard cap on request cycle budgets")
		cacheSize    = flag.Int("cache", 64, "assembled-program LRU capacity (negative disables)")
		sweepPoints  = flag.Int("sweep-points", 256, "max grid points per sweep request")
		jobPoints    = flag.Int("job-points", 4096, "max grid points per asynchronous job")
		maxJobs      = flag.Int("max-jobs", 64, "max concurrently active (non-terminal) jobs")
		jobDir       = flag.String("job-dir", "", "durable job-store directory (empty = in-memory jobs)")
		workerSlots  = flag.Int("worker-slots", 4, "concurrent points per remote worker")
		batchLanes   = flag.Int("batch-lanes", 0, "wide-machine lane width for batching compatible job points in-process (0 = default 8, 1 disables)")
		spawnWorkers = flag.Int("spawn-workers", 0, "spawn N local rssd worker processes and shard jobs across them")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests at shutdown")
		enablePprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		spansPath    = flag.String("trace-spans", "", "write request spans as Chrome Trace JSON here after drain ('-' for stdout)")
		flightSize   = flag.Int("span-flight-size", 0, "service span flight-recorder ring size (0 = default)")
	)
	flag.Var(&workerURLs, "worker-url", "remote rssd worker base URL (repeatable)")
	flag.Parse()

	// -spawn-workers is the one-machine fleet: fork N rssd worker
	// processes on free ports and shard jobs across them, exactly as a
	// multi-host deployment would with -worker-url.
	var workerProcs []*exec.Cmd
	if *spawnWorkers > 0 {
		urls, procs, err := spawnLocalWorkers(*spawnWorkers, *workerSlots)
		if err != nil {
			log.Fatalf("rssd: spawning workers: %v", err)
		}
		workerURLs = append(workerURLs, urls...)
		workerProcs = procs
		defer func() {
			for _, p := range workerProcs {
				p.Process.Signal(syscall.SIGTERM) //nolint:errcheck // already exiting
			}
			for _, p := range workerProcs {
				p.Wait() //nolint:errcheck
			}
		}()
	}

	api, err := server.New(server.Config{
		Workers:          *workers,
		Backlog:          *backlog,
		MaxBodyBytes:     *maxBody,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DefaultMaxCycles: *maxCycles,
		MaxCyclesCap:     *cyclesCap,
		CacheSize:        *cacheSize,
		MaxSweepPoints:   *sweepPoints,
		MaxJobPoints:     *jobPoints,
		MaxActiveJobs:    *maxJobs,
		JobDir:           *jobDir,
		WorkerURLs:       workerURLs,
		WorkerSlots:      *workerSlots,
		BatchLanes:       *batchLanes,
		EnablePprof:      *enablePprof,
		SpanFlightSize:   *flightSize,
	})
	if err != nil {
		log.Fatalf("rssd: %v", err)
	}
	if *jobDir != "" {
		if skipped := api.Coordinator().Store().Skipped(); skipped > 0 {
			log.Printf("rssd: job store: tolerated %d corrupted record(s)", skipped)
		}
		log.Printf("rssd: job store %s: %d job(s) loaded", *jobDir, len(api.Coordinator().Store().Jobs()))
	}
	if n := len(workerURLs); n > 0 {
		log.Printf("rssd: sharding jobs across %d worker(s)", n)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rssd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("rssd: serve: %v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("rssd: draining (up to %s)", *drainTimeout)
	api.StartDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("rssd: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("rssd: serve: %v", err)
	}
	// Stop the fabric only after the HTTP drain: in-flight points are
	// cancelled and stay pending in the store for the next boot's resume.
	if err := api.Close(); err != nil {
		log.Printf("rssd: closing job store: %v", err)
	}
	// Flush the span sink only after Shutdown returns: at that point the
	// drain is complete and no handler is still appending spans.
	if *spansPath != "" {
		if err := dumpSpans(api, *spansPath); err != nil {
			log.Fatalf("rssd: trace-spans: %v", err)
		}
	}
	log.Printf("rssd: drained, bye")
}

// spawnLocalWorkers forks n rssd worker processes on free localhost
// ports and returns their base URLs. Ports are picked by binding :0,
// recording the address, and releasing it for the child — a benign
// race on a single machine.
func spawnLocalWorkers(n, slots int) ([]string, []*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	var urls []string
	var procs []*exec.Cmd
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return urls, procs, err
		}
		addr := ln.Addr().String()
		ln.Close()
		cmd := exec.Command(self, "-addr", addr, "-workers", fmt.Sprint(slots))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return urls, procs, err
		}
		procs = append(procs, cmd)
		urls = append(urls, "http://"+addr)
	}
	return urls, procs, nil
}

// dumpSpans writes the service flight recorder as a Chrome Trace so the
// request timeline of a finished rssd session loads in Perfetto.
func dumpSpans(api *server.Server, path string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return api.Spans().WriteChromeTrace(w)
}
