// Lane-vs-scalar equivalence tests for the wide machine: a lane of
// internal/wide must retire with exactly what a scalar run of the same
// machine would have produced — same architectural stats, same wrapped
// cycle-limit error, byte-identical report JSON (which carries the
// steering, prefetch and fault counters) — across the X1-X6 experiment
// axes, for both live policies, under fault injection, for ragged lane
// groups and with lanes retiring mid-run.
package repro_test

import (
	"bytes"
	"context"
	"testing"

	"repro"
	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/wide"
)

// laneSpec is one lane's run: everything needed to construct the
// machine twice, once for the wide batch and once for the scalar
// reference.
type laneSpec struct {
	prog      repro.Program
	opt       repro.Options
	maxCycles int
}

// checkWideMatchesScalar runs specs as lanes of one wide machine and
// each spec again on a fresh scalar machine, then compares per lane:
// stats must be equal, errors must agree verbatim (the wrapped
// cycle-limit message includes the retired count, so a single divergent
// cycle shows up), and the report JSON must match byte for byte.
func checkWideMatchesScalar(t *testing.T, specs []laneSpec) {
	t.Helper()
	ctx := context.Background()

	lanes := make([]wide.Lane, len(specs))
	for i, s := range specs {
		lanes[i] = wide.Lane{M: repro.NewMachine(s.prog, s.opt), MaxCycles: s.maxCycles}
	}
	w := wide.New(lanes)
	results, err := w.RunContext(ctx)
	if err != nil {
		t.Fatalf("wide run: %v", err)
	}

	for i, s := range specs {
		ref := repro.NewMachine(s.prog, s.opt)
		refStats, refErr := ref.RunContext(ctx, s.maxCycles)

		if results[i].Stats != refStats {
			t.Errorf("lane %d: stats diverge:\n  wide:   %+v\n  scalar: %+v", i, results[i].Stats, refStats)
		}
		laneErr, scalarErr := "", ""
		if results[i].Err != nil {
			laneErr = results[i].Err.Error()
		}
		if refErr != nil {
			scalarErr = refErr.Error()
		}
		if laneErr != scalarErr {
			t.Errorf("lane %d: errors diverge:\n  wide:   %q\n  scalar: %q", i, laneErr, scalarErr)
		}

		laneJSON, err := w.Lane(i).ReportJSON()
		if err != nil {
			t.Fatalf("lane %d report: %v", i, err)
		}
		refJSON, err := ref.ReportJSON()
		if err != nil {
			t.Fatalf("lane %d scalar report: %v", i, err)
		}
		if !bytes.Equal(laneJSON, refJSON) {
			t.Errorf("lane %d: reports diverge:\n  wide:   %s\n  scalar: %s", i, laneJSON, refJSON)
		}
	}
}

// replicas builds n lanes of the same program and options differing
// only by seed — the homogeneous sweep shape the batching layers group.
func replicas(prog repro.Program, opt repro.Options, maxCycles, n int) []laneSpec {
	specs := make([]laneSpec, n)
	for i := range specs {
		o := opt
		o.Seed = opt.Seed + int64(i)
		specs[i] = laneSpec{prog: prog, opt: o, maxCycles: maxCycles}
	}
	return specs
}

// wideExperiments mirrors the X1-X6 axes of the steering-cache suite at
// the facade level: phased mix, slow reconfiguration, residency hold
// (the facade's knob on the X3 axis), disabled FFUs, a wide window and
// a custom FP-rich basis.
func wideExperiments() []struct {
	name string
	prog repro.Program
	opt  repro.Options
} {
	x1 := repro.Synthesize([]repro.Phase{
		{Mix: repro.MixIntHeavy, Instructions: 500},
		{Mix: repro.MixFPHeavy, Instructions: 500},
		{Mix: repro.MixMemHeavy, Instructions: 500},
		{Mix: repro.MixFPHeavy, Instructions: 500},
	}, 7)
	x2 := repro.Synthesize([]repro.Phase{
		{Mix: repro.MixIntHeavy, Instructions: 400},
		{Mix: repro.MixFPHeavy, Instructions: 400},
	}, 7)
	x4 := repro.Synthesize([]repro.Phase{{Mix: repro.MixFPHeavy, Instructions: 600}}, 5)
	x5 := repro.Synthesize([]repro.Phase{{Mix: repro.MixUniform, Instructions: 800}}, 3)
	x6 := repro.Synthesize([]repro.Phase{
		{Mix: repro.MixFPHeavy, Instructions: 400},
		{Mix: repro.MixIntHeavy, Instructions: 400},
	}, 2)
	fpRich := repro.Basis{
		config.MustNew("fp-a", arch.FPALU, arch.FPMDU, arch.IntALU, arch.LSU),
		config.MustNew("fp-b", arch.FPMDU, arch.FPMDU, arch.IntALU, arch.LSU),
		config.MustNew("fp-c", arch.FPALU, arch.FPALU, arch.IntALU, arch.LSU),
	}

	withLatency := func(lat int) repro.Params {
		p := repro.DefaultParams()
		p.ReconfigLatency = lat
		return p
	}
	noFFU := repro.DefaultParams()
	noFFU.DisableFFUs = true
	window16 := repro.DefaultParams()
	window16.WindowSize = 16

	return []struct {
		name string
		prog repro.Program
		opt  repro.Options
	}{
		{"X1Phased", x1, repro.Options{Params: repro.DefaultParams()}},
		{"X2ReconfigLatency64", x2, repro.Options{Params: withLatency(64)}},
		{"X3Residency64", x1, repro.Options{Params: repro.DefaultParams(), MinResidency: 64}},
		{"X4NoFFU", x4, repro.Options{Params: noFFU}},
		{"X5Window16", x5, repro.Options{Params: window16}},
		{"X6FPRichBasis", x6, repro.Options{Params: repro.DefaultParams(), Basis: &fpRich}},
	}
}

// TestWideMatchesScalarExperiments runs every X1-X6 variant under both
// live policies as a 4-lane replica group and pins lane results to the
// scalar reference.
func TestWideMatchesScalarExperiments(t *testing.T) {
	for _, exp := range wideExperiments() {
		for _, policy := range []repro.Policy{repro.PolicySteering, repro.PolicyPrefetch} {
			exp, policy := exp, policy
			t.Run(exp.name+"/"+policy.String(), func(t *testing.T) {
				t.Parallel()
				opt := exp.opt
				opt.Policy = policy
				opt.Seed = 7
				checkWideMatchesScalar(t, replicas(exp.prog, opt, 2_000_000, 4))
			})
		}
	}
}

// TestWideMatchesScalarFaults extends the equivalence to fault
// injection: the injector PRNG streams are seeded per machine, so lane
// and scalar runs observe the same upsets, salvage decisions and
// repairs — stats and fault counters in the report must match exactly.
func TestWideMatchesScalarFaults(t *testing.T) {
	prog := repro.Synthesize(repro.AlternatingPhases(3000, 250), 7)
	params := repro.DefaultParams()
	params.FaultTransientRate = 0.002
	params.FaultPermanentRate = 0.0001
	params.FaultSeed = 11
	for _, policy := range []repro.Policy{repro.PolicySteering, repro.PolicyPrefetch} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			t.Parallel()
			opt := repro.Options{Params: params, Policy: policy, Seed: 3}
			checkWideMatchesScalar(t, replicas(prog, opt, 2_000_000, 4))
		})
	}
}

// TestWideRaggedGroup covers the final partial group of a sweep whose
// point count is not a lane-width multiple: 5 replicas, and a trailing
// single-lane machine (the degenerate group).
func TestWideRaggedGroup(t *testing.T) {
	prog := repro.Synthesize(repro.AlternatingPhases(2000, 250), 7)
	opt := repro.Options{Params: repro.DefaultParams(), Policy: repro.PolicySteering, Seed: 20}
	checkWideMatchesScalar(t, replicas(prog, opt, 2_000_000, 5))
	checkWideMatchesScalar(t, replicas(prog, opt, 2_000_000, 1))
}

// TestWideMidRunRetirement mixes lanes that leave the active set at
// very different times — a short program that halts early, a lane
// whose tight cycle budget forces the scalar path's exact wrapped
// cycle-limit error, and long-running lanes — so lanes retire while
// others keep stepping. The retirement masks must sort the lanes by
// outcome, and every lane must still match its scalar reference.
func TestWideMidRunRetirement(t *testing.T) {
	short := repro.Synthesize([]repro.Phase{{Mix: repro.MixIntHeavy, Instructions: 100}}, 9)
	long := repro.Synthesize(repro.AlternatingPhases(4000, 500), 9)
	opt := repro.Options{Params: repro.DefaultParams(), Policy: repro.PolicySteering, Seed: 9}
	specs := []laneSpec{
		{prog: short, opt: opt, maxCycles: 2_000_000}, // halts long before the others
		{prog: long, opt: opt, maxCycles: 1_000},      // exhausts its budget mid-flight
		{prog: long, opt: opt, maxCycles: 2_000_000},
		{prog: long, opt: opt, maxCycles: 2_000_000},
	}

	ctx := context.Background()
	lanes := make([]wide.Lane, len(specs))
	for i, s := range specs {
		lanes[i] = wide.Lane{M: repro.NewMachine(s.prog, s.opt), MaxCycles: s.maxCycles}
	}
	w := wide.New(lanes)
	if _, err := w.RunContext(ctx); err != nil {
		t.Fatalf("wide run: %v", err)
	}
	if got, want := w.HaltedMask(), uint64(0b1101); got != want {
		t.Errorf("halted mask = %#b, want %#b", got, want)
	}
	if got, want := w.LimitedMask(), uint64(0b0010); got != want {
		t.Errorf("limited mask = %#b, want %#b", got, want)
	}
	if w.ActiveMask() != 0 || w.CancelledMask() != 0 {
		t.Errorf("active %#b / cancelled %#b after full run, want 0/0", w.ActiveMask(), w.CancelledMask())
	}

	checkWideMatchesScalar(t, specs)
}
