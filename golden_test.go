package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestTelemetryJSONLSchemaGolden pins the JSONL telemetry schema: the
// field names and JSON types of sample, decision, fault and prefetch
// records must match testdata/telemetry_schema.golden. Downstream
// tooling parses these streams, so adding a field means regenerating
// the golden file deliberately (delete it and re-run the test with
// -run TelemetryJSONLSchemaGolden to print the new schema). Sample,
// decision and fault records come from a saxpy steering run with fault
// injection at a rate high enough that the seeded run deterministically
// emits at least one fault record; prefetch records come from a
// prefetch-policy run on a phase-alternating workload, whose detector
// deterministically logs phase-change events.
func TestTelemetryJSONLSchemaGolden(t *testing.T) {
	k := KernelByName("saxpy")
	if k == nil {
		t.Fatal("saxpy kernel missing")
	}
	var buf bytes.Buffer
	params := DefaultParams()
	params.FaultTransientRate = 0.002
	params.FaultSeed = 5
	m := NewMachine(k.Program(), Options{Params: params, Policy: PolicySteering})
	if k.Setup != nil {
		k.Setup(m.Processor().Memory(), m.Processor().SetReg)
	}
	if _, err := m.EnableTelemetry(&buf, "jsonl", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	// A second run under the prefetch policy supplies prefetch records.
	var pbuf bytes.Buffer
	pprog := Synthesize(AlternatingPhases(2000, 250), 7)
	pmach := NewMachine(pprog, Options{Params: DefaultParams(), Policy: PolicyPrefetch})
	if _, err := pmach.EnableTelemetry(&pbuf, "jsonl", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := pmach.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	// Take the first record of each kind and derive its schema.
	schemas := map[string]string{}
	for _, stream := range []string{buf.String(), pbuf.String()} {
		for _, line := range strings.Split(strings.TrimSpace(stream), "\n") {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("invalid JSONL line %q: %v", line, err)
			}
			kind, _ := rec["record"].(string)
			if kind == "" {
				t.Fatalf("record missing record tag: %s", line)
			}
			if _, seen := schemas[kind]; !seen {
				schemas[kind] = schemaOf(rec)
			}
		}
	}
	for _, kind := range []string{"sample", "decision", "fault", "prefetch"} {
		if schemas[kind] == "" {
			t.Fatalf("no %s record in the instrumented runs", kind)
		}
	}

	var sb strings.Builder
	sb.WriteString("# JSONL telemetry schema: field -> JSON type, per record kind.\n")
	sb.WriteString("# Regenerate: delete this file, run go test -run TelemetryJSONLSchemaGolden,\n")
	sb.WriteString("# and copy the schema the failure prints.\n")
	kinds := make([]string, 0, len(schemas))
	for kind := range schemas {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		fmt.Fprintf(&sb, "[%s]\n%s", kind, schemas[kind])
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "telemetry_schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (current schema below, save it there if this is a new checkout):\n%s\n%v",
			goldenPath, got, err)
	}
	if got != string(want) {
		t.Errorf("telemetry JSONL schema drifted from %s.\ngot:\n%s\nwant:\n%s",
			goldenPath, got, want)
	}
}

// schemaOf renders a JSON object's schema as sorted "field: type" lines.
func schemaOf(rec map[string]any) string {
	fields := make([]string, 0, len(rec))
	for name := range rec {
		fields = append(fields, name)
	}
	sort.Strings(fields)
	var sb strings.Builder
	for _, name := range fields {
		fmt.Fprintf(&sb, "%s: %s\n", name, jsonType(rec[name]))
	}
	return sb.String()
}

func jsonType(v any) string {
	switch vv := v.(type) {
	case nil:
		return "null"
	case bool:
		return "bool"
	case string:
		return "string"
	case float64:
		return "number"
	case map[string]any:
		return "object"
	case []any:
		elem := "any"
		if len(vv) > 0 {
			elem = jsonType(vv[0])
		}
		return "array of " + elem
	}
	return fmt.Sprintf("%T", v)
}
