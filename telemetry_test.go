package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryEndToEndSteering drives a steering-policy kernel run with
// an in-memory collector and checks the full pipeline: samples arrive on
// the interval with live machine state, CEM scores are present for all
// four candidates, and every configuration switch produced a decision
// record.
func TestTelemetryEndToEndSteering(t *testing.T) {
	k := KernelByName("matmul")
	if k == nil {
		t.Fatal("matmul kernel missing")
	}
	m := NewMachine(k.Program(), Options{Policy: PolicySteering})
	if k.Setup != nil {
		k.Setup(m.Processor().Memory(), m.Processor().SetReg)
	}
	col := &telemetry.Collector{}
	probe := m.EnableTelemetryExporter(col, 50)
	stats, err := m.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	// Samples land exactly on interval boundaries.
	for _, s := range col.Samples {
		if s.Cycle%50 != 0 {
			t.Fatalf("sample at cycle %d, not on the 50-cycle interval", s.Cycle)
		}
	}
	last := col.Samples[len(col.Samples)-1]
	if last.Retired == 0 || last.Retired > stats.Retired {
		t.Errorf("last sample retired = %d, run retired = %d", last.Retired, stats.Retired)
	}
	// A steering run scores candidates every managed cycle.
	sawCEM := false
	for _, s := range col.Samples {
		if s.CEMValid {
			sawCEM = true
			if s.CEMChoice < 0 || s.CEMChoice >= 4 {
				t.Errorf("CEM choice out of range: %d", s.CEMChoice)
			}
		}
	}
	if !sawCEM {
		t.Error("no sample carried CEM scores under the steering policy")
	}
	// Cumulative counters agree with the run stats.
	if v, _ := probe.Registry().CounterValue("rsssim_retired_total"); int(v) != stats.Retired {
		t.Errorf("retired counter = %d, stats = %d", v, stats.Retired)
	}
	if v, _ := probe.Registry().CounterValue("rsssim_cycles_total"); int(v) != stats.Cycles {
		t.Errorf("cycles counter = %d, stats = %d", v, stats.Cycles)
	}
	// The steering run reconfigures; every switch logged a decision.
	if m.Reconfigurations() > 0 && len(col.Decisions) == 0 {
		t.Error("fabric reconfigured but no steering decisions were logged")
	}
	for _, d := range col.Decisions {
		if d.To == "" || d.Choice < 1 || d.Choice > 3 {
			t.Errorf("malformed decision: %+v", d)
		}
		if d.Spans == 0 {
			t.Errorf("decision with zero spans started: %+v", d)
		}
	}
	// Bottleneck buckets partition the cycles across samples.
	var bucketSum int
	for _, s := range col.Samples {
		bucketSum += s.BucketIssued + s.BucketUnits + s.BucketDeps + s.BucketFrontend
	}
	if bucketSum > stats.Cycles {
		t.Errorf("bucket sum %d exceeds cycle count %d", bucketSum, stats.Cycles)
	}
}

// TestTelemetryJSONLFacade checks EnableTelemetry's writer plumbing and
// format validation.
func TestTelemetryJSONLFacade(t *testing.T) {
	k := KernelByName("saxpy")
	if k == nil {
		t.Fatal("saxpy kernel missing")
	}
	var buf bytes.Buffer
	m := NewMachine(k.Program(), Options{Policy: PolicySteering})
	if k.Setup != nil {
		k.Setup(m.Processor().Memory(), m.Processor().SetReg)
	}
	if _, err := m.EnableTelemetry(&buf, "jsonl", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("JSONL output has %d lines, want several", len(lines))
	}
	if !strings.Contains(lines[0], `"record":"`) {
		t.Errorf("first line missing record tag: %s", lines[0])
	}

	if _, err := m.EnableTelemetry(&buf, "yaml", 100); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := m.EnableTelemetry(&buf, "jsonl", -5); err == nil {
		t.Error("negative interval accepted")
	}
}

// TestTelemetryDisabledMachineRunsIdentically proves instrumentation is
// inert when no probe is attached: identical cycle counts and
// architectural results with and without a probe on another machine.
func TestTelemetryDisabledMachineRunsIdentically(t *testing.T) {
	k := KernelByName("saxpy")
	run := func(withProbe bool) Stats {
		m := NewMachine(k.Program(), Options{Policy: PolicySteering})
		if k.Setup != nil {
			k.Setup(m.Processor().Memory(), m.Processor().SetReg)
		}
		if withProbe {
			m.EnableTelemetryExporter(&telemetry.Collector{}, 10)
		}
		stats, err := m.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	plain, probed := run(false), run(true)
	if plain.Cycles != probed.Cycles || plain.Retired != probed.Retired {
		t.Errorf("telemetry changed the simulation: %d/%d cycles, %d/%d retired",
			plain.Cycles, probed.Cycles, plain.Retired, probed.Retired)
	}
}
