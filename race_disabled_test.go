//go:build !race

package repro_test

// raceEnabled reports whether the race detector is compiled in. The
// detector instruments allocations, so the zero-alloc regression tests
// skip themselves under -race (CI runs them in a separate non-race
// step).
const raceEnabled = false
